#include "service.hh"

#include <sstream>

#include "report/explain.hh"
#include "report/prometheus.hh"
#include "support/logging.hh"
#include "support/str_utils.hh"
#include "support/trace.hh"

#include <optional>

namespace amos {
namespace serve {

namespace {

using Clock = std::chrono::steady_clock;

double
elapsedMs(Clock::time_point since)
{
    return std::chrono::duration<double, std::milli>(Clock::now() -
                                                     since)
        .count();
}

} // namespace

Json
ServeStats::toJson() const
{
    Json out = Json::object();
    auto u64 = [](std::uint64_t v) {
        return Json(static_cast<std::int64_t>(v));
    };
    out.set("requests", u64(requests));
    out.set("memory_hits", u64(memoryHits));
    out.set("disk_hits", u64(diskHits));
    out.set("compiles", u64(compiles));
    out.set("coalesced", u64(coalesced));
    out.set("rejected_queue_full", u64(rejectedQueueFull));
    out.set("deadline_exceeded", u64(deadlineExceeded));
    out.set("cancelled", u64(cancelled));
    out.set("failures", u64(failures));
    out.set("warmed_entries", u64(warmedEntries));
    Json latency = Json::object();
    latency.set("count", u64(latencyCount));
    latency.set("mean_ms", Json(meanMs));
    latency.set("p50_ms", Json(p50Ms));
    latency.set("p95_ms", Json(p95Ms));
    latency.set("p99_ms", Json(p99Ms));
    out.set("latency", std::move(latency));
    Json unified = Json::object();
    for (const auto &[name, value] : metrics)
        unified.set(name, u64(value));
    out.set("metrics", std::move(unified));
    return out;
}

std::string
ServeStats::summary() const
{
    std::ostringstream out;
    out << "serve: req=" << requests << " hit_mem=" << memoryHits
        << " hit_disk=" << diskHits << " compiled=" << compiles
        << " coalesced=" << coalesced
        << " shed=" << rejectedQueueFull
        << " deadline=" << deadlineExceeded << " p50="
        << fmtDouble(p50Ms, 2) << "ms p95=" << fmtDouble(p95Ms, 2)
        << "ms p99=" << fmtDouble(p99Ms, 2) << "ms";
    return out.str();
}

Json
ServeOutcome::toJson(const std::string &id) const
{
    Json out = Json::object();
    if (!id.empty())
        out.set("id", Json(id));
    out.set("ok", Json(ok));
    out.set("latency_ms", Json(latencyMs));
    if (ok) {
        out.set("served_by", Json(servedBy));
        out.set("result", compileResultToJson(result));
        if (!trace.isNull())
            out.set("trace", trace);
        if (!explain.isNull())
            out.set("explain", explain);
    } else {
        Json err = Json::object();
        err.set("code", Json(errorCodeName(error)));
        err.set("message", Json(message));
        out.set("error", std::move(err));
    }
    return out;
}

/** One in-flight exploration shared by every coalesced waiter. */
struct CompileService::Job
{
    Job(std::string key_, CompileRequest request_,
        TensorComputation comp_, HardwareSpec hw_)
        : key(std::move(key_)), request(std::move(request_)),
          comp(std::move(comp_)), hw(std::move(hw_)),
          future(promise.get_future().share())
    {}

    std::string key;
    CompileRequest request;
    TensorComputation comp;
    HardwareSpec hw;

    CancelToken token;
    /// Waiters still interested; the last one to abandon cancels.
    std::atomic<int> waiters{1};

    std::promise<ServeOutcome> promise;
    std::shared_future<ServeOutcome> future;
};

CompileService::CompileService(ServeOptions options)
    : _options(options),
      _requests(_metrics.counter("serve.requests")),
      _memoryHits(_metrics.counter("serve.memory_hits")),
      _diskHits(_metrics.counter("serve.disk_hits")),
      _compiles(_metrics.counter("serve.compiles")),
      _coalesced(_metrics.counter("serve.coalesced")),
      _rejectedQueueFull(
          _metrics.counter("serve.rejected_queue_full")),
      _deadlineExceeded(_metrics.counter("serve.deadline_exceeded")),
      _cancelled(_metrics.counter("serve.cancelled")),
      _failures(_metrics.counter("serve.failures")),
      _warmedEntries(_metrics.counter("serve.warmed_entries")),
      _inflightGauge(_metrics.gauge("serve.inflight")),
      _cache(options.cache, &_metrics),
      _pool(std::make_unique<ThreadPool>(
          ThreadPool::resolveThreads(
              static_cast<int>(options.workers))))
{
    if (_options.warmOnStart && _cache.hasDisk())
        _warmedEntries.add(_cache.warm());
    if (_options.statsLogPeriodMs > 0)
        _statsLogger = std::thread([this] { statsLoggerLoop(); });
}

CompileService::~CompileService()
{
    drain();
}

void
CompileService::recordLatency(double ms)
{
    _latency.record(ms);
}

CompileService::Ticket
CompileService::submit(const CompileRequest &req)
{
    Ticket ticket;
    ticket._start = Clock::now();
    ticket._explain = req.explain;
    _requests.add();

    auto immediate = [&](ServeOutcome outcome) {
        outcome.latencyMs = elapsedMs(ticket._start);
        recordLatency(outcome.latencyMs);
        ticket._immediate = std::move(outcome);
        ticket._isImmediate = true;
        return ticket;
    };

    // A draining service rejects everything, cache hits included:
    // "shutting_down" must be the unambiguous answer once drain()
    // was called, so clients fail over instead of lingering.
    {
        std::lock_guard<std::mutex> lock(_mutex);
        if (_draining) {
            ServeOutcome outcome;
            outcome.error = ErrorCode::ShuttingDown;
            outcome.message = "service is draining";
            return immediate(std::move(outcome));
        }
    }

    // Resolve the request to compiler inputs; a bad op/hw/knob is a
    // typed rejection, not an exception escaping the server loop.
    std::optional<TensorComputation> comp;
    HardwareSpec spec;
    std::string key;
    try {
        comp = computationFromRequest(req);
        spec = hardwareFromRequest(req);
        std::ostringstream k;
        k << TuningCache::keyFor(*comp, spec) << "/g"
          << req.generations << "_s" << req.seed;
        key = k.str();
    } catch (const std::exception &e) {
        ServeOutcome outcome;
        outcome.error = ErrorCode::BadRequest;
        outcome.message = e.what();
        return immediate(std::move(outcome));
    }

    if (req.deadlineMs > 0)
        ticket._deadline =
            ticket._start +
            std::chrono::duration_cast<Clock::duration>(
                std::chrono::duration<double, std::milli>(
                    req.deadlineMs));

    // Tier 1/2 fast path: replay the persisted plan — one simulator
    // run instead of an exploration.
    TieredCache::Tier tier;
    if (auto entry = _cache.get(key, &tier)) {
        bool from_memory = tier == TieredCache::Tier::Memory;
        std::optional<CompileResult> result;
        {
            // Per-request tracing covers the replay (one simulator
            // run) exactly like a full compile.
            std::optional<TraceContext> trace_ctx;
            if (!req.traceId.empty())
                trace_ctx.emplace(req.traceId);
            TraceSpan span("serve.cache_hit", "serve");
            span.arg("tier", from_memory ? "memory" : "disk");
            result = replayCacheEntry(*entry, *comp, spec);
        }
        if (result) {
            ServeOutcome outcome;
            outcome.ok = true;
            outcome.result = std::move(*result);
            outcome.servedBy = from_memory ? "memory" : "disk";
            if (req.explain)
                outcome.explain =
                    report::explainToJson(report::explainResult(
                        outcome.result, *comp, spec));
            (from_memory ? _memoryHits : _diskHits).add();
            if (!req.traceId.empty()) {
                auto &tracer = Tracer::global();
                outcome.trace = tracer.spanTreeFor(req.traceId);
                if (!tracer.enabled())
                    tracer.releaseTrace(req.traceId);
            }
            return immediate(std::move(outcome));
        }
        // Stale entry (e.g. hardware spec evolved): re-explore.
    }

    std::shared_ptr<Job> job;
    {
        std::lock_guard<std::mutex> lock(_mutex);
        if (_draining) {
            ServeOutcome outcome;
            outcome.error = ErrorCode::ShuttingDown;
            outcome.message = "service is draining";
            return immediate(std::move(outcome));
        }
        auto it = _inflight.find(key);
        if (it != _inflight.end()) {
            // Coalesce: attach to the in-flight exploration. The
            // join may only ever extend the job's deadline.
            job = it->second;
            job->waiters.fetch_add(1, std::memory_order_relaxed);
            job->token.extendDeadline(ticket._deadline);
            _coalesced.add();
            ticket._job = std::move(job);
            ticket._joiner = true;
            return ticket;
        }
        if (_inflight.size() >= _options.maxQueue) {
            _rejectedQueueFull.add();
            ServeOutcome outcome;
            outcome.error = ErrorCode::QueueFull;
            outcome.message =
                "admission bound of " +
                std::to_string(_options.maxQueue) +
                " in-flight explorations reached";
            return immediate(std::move(outcome));
        }
        job = std::make_shared<Job>(key, req, std::move(*comp),
                                    std::move(spec));
        job->token.setDeadline(ticket._deadline);
        _inflight[key] = job;
        _inflightGauge.set(static_cast<double>(_inflight.size()));
    }
    _pool->submit([this, job] { runJob(job); });
    ticket._job = std::move(job);
    return ticket;
}

void
CompileService::runJob(std::shared_ptr<Job> job)
{
    ServeOutcome outcome;
    const std::string &trace_id = job->request.traceId;
    // Tag every stderr line this request's compilation emits with
    // its trace id (log <-> trace correlation).
    LogTraceScope log_scope(trace_id);
    AMOS_LOG(Debug) << "compile start key=" << job->key;
    {
        // Per-request trace context: every span the exploration
        // opens on this thread (and, through parallelFor's context
        // propagation, on the tuner's worker threads) is tagged with
        // the request's trace id.
        std::optional<TraceContext> trace_ctx;
        if (!trace_id.empty())
            trace_ctx.emplace(trace_id);
        TraceSpan span("serve.compile", "serve");
        span.arg("key", job->key);
        try {
            // A request whose deadline fired while queued never
            // starts.
            job->token.checkpoint("queued request");
            TuneOptions options =
                tuneOptionsFromRequest(job->request);
            options.cancel = &job->token;
            Compiler compiler(job->hw, options);
            _compiles.add();
            auto result = compiler.compile(job->comp);
            if (result.tensorized && result.tuning.bestPlan) {
                CacheEntry entry;
                entry.intrinsicName =
                    result.tuning.bestPlan->intrinsic().name();
                entry.mapping = result.tuning.bestPlan->mapping();
                entry.schedule = result.tuning.bestSchedule;
                entry.cycles = result.tuning.bestCycles;
                _cache.put(job->key, entry);
            }
            outcome.ok = true;
            outcome.result = std::move(result);
            outcome.servedBy = "compile";
        } catch (const CancelledError &e) {
            outcome.error = job->token.deadlineExpired()
                                ? ErrorCode::DeadlineExceeded
                                : ErrorCode::Cancelled;
            outcome.message = e.what();
        } catch (const std::exception &e) {
            outcome.error = ErrorCode::Internal;
            outcome.message = e.what();
        }
    }
    if (!trace_id.empty()) {
        // The root span has closed, so the tree is complete. Drop
        // the spans afterwards (unless a global trace collection is
        // running) so a long-lived server does not accumulate one
        // request's spans forever.
        auto &tracer = Tracer::global();
        if (outcome.ok)
            outcome.trace = tracer.spanTreeFor(trace_id);
        if (!tracer.enabled())
            tracer.releaseTrace(trace_id);
    }
    // Publish to the cache *before* leaving the in-flight map (done
    // above), then deregister, then resolve the waiters: a racing
    // submit always finds the result either in flight or cached.
    if (outcome.ok)
        AMOS_LOG(Debug)
            << "compile done key=" << job->key
            << " cycles=" << outcome.result.cycles;
    else
        AMOS_LOG(Debug)
            << "compile failed key=" << job->key << " code="
            << errorCodeName(outcome.error) << ": "
            << outcome.message;
    {
        std::lock_guard<std::mutex> lock(_mutex);
        _inflight.erase(job->key);
        _inflightGauge.set(static_cast<double>(_inflight.size()));
    }
    job->promise.set_value(std::move(outcome));
    _idle.notify_all();
}

ServeOutcome
CompileService::wait(Ticket &ticket)
{
    if (ticket._isImmediate)
        return ticket._immediate;
    require(static_cast<bool>(ticket._job),
            "CompileService::wait on an empty ticket");
    auto job = ticket._job;

    if (ticket._deadline != Clock::time_point::max() &&
        job->future.wait_until(ticket._deadline) ==
            std::future_status::timeout) {
        if (!ticket._abandoned) {
            ticket._abandoned = true;
            // Last waiter out turns off the lights: cancel the
            // exploration nobody is listening to any more.
            if (job->waiters.fetch_sub(
                    1, std::memory_order_acq_rel) == 1)
                job->token.cancel();
        }
        _deadlineExceeded.add();
        ServeOutcome outcome;
        outcome.error = ErrorCode::DeadlineExceeded;
        outcome.message = "deadline of " +
                          fmtDouble(job->request.deadlineMs, 1) +
                          " ms exceeded";
        outcome.latencyMs = elapsedMs(ticket._start);
        recordLatency(outcome.latencyMs);
        return outcome;
    }

    ServeOutcome outcome = job->future.get();
    if (outcome.ok && ticket._joiner)
        outcome.servedBy = "coalesced";
    // Per-ticket output shaping: explain is built on the waiter's
    // copy, so a coalesced joiner that asked for it gets one even
    // when the originating request did not.
    if (outcome.ok && ticket._explain && outcome.explain.isNull())
        outcome.explain = report::explainToJson(
            report::explainResult(outcome.result, job->comp,
                                  job->hw));
    if (!outcome.ok) {
        switch (outcome.error) {
        case ErrorCode::DeadlineExceeded:
            _deadlineExceeded.add();
            break;
        case ErrorCode::Cancelled:
            _cancelled.add();
            break;
        default:
            _failures.add();
            break;
        }
    }
    outcome.latencyMs = elapsedMs(ticket._start);
    recordLatency(outcome.latencyMs);
    return outcome;
}

ServeOutcome
CompileService::serve(const CompileRequest &req)
{
    auto ticket = submit(req);
    return wait(ticket);
}

ServeStats
CompileService::stats() const
{
    ServeStats out;
    out.requests = _requests.value();
    out.memoryHits = _memoryHits.value();
    out.diskHits = _diskHits.value();
    out.compiles = _compiles.value();
    out.coalesced = _coalesced.value();
    out.rejectedQueueFull = _rejectedQueueFull.value();
    out.deadlineExceeded = _deadlineExceeded.value();
    out.cancelled = _cancelled.value();
    out.failures = _failures.value();
    out.warmedEntries = _warmedEntries.value();
    out.metrics = _metrics.counterValues();
    out.latencyCount = _latency.count();
    out.meanMs = _latency.meanMs();
    out.p50Ms = _latency.quantileMs(0.50);
    out.p95Ms = _latency.quantileMs(0.95);
    out.p99Ms = _latency.quantileMs(0.99);
    return out;
}

std::string
CompileService::prometheusText() const
{
    return report::prometheusExposition(
        _metrics, {{"serve.latency_ms", &_latency}});
}

bool
CompileService::draining() const
{
    std::lock_guard<std::mutex> lock(_mutex);
    return _draining;
}

void
CompileService::drain()
{
    {
        std::unique_lock<std::mutex> lock(_mutex);
        _draining = true;
        _idle.wait(lock, [this] { return _inflight.empty(); });
    }
    {
        std::lock_guard<std::mutex> lock(_loggerMutex);
        _loggerStop = true;
    }
    _loggerCv.notify_all();
    if (_statsLogger.joinable())
        _statsLogger.join();
    // Joining the pool here (not in ~CompileService) means drain()
    // returns only after every worker ran to completion.
    _pool.reset();
}

void
CompileService::statsLoggerLoop()
{
    auto period = std::chrono::duration<double, std::milli>(
        _options.statsLogPeriodMs);
    std::unique_lock<std::mutex> lock(_loggerMutex);
    for (;;) {
        if (_loggerCv.wait_for(
                lock,
                std::chrono::duration_cast<Clock::duration>(period),
                [this] { return _loggerStop; }))
            return;
        lock.unlock();
        inform(stats().summary());
        lock.lock();
    }
}

} // namespace serve
} // namespace amos
