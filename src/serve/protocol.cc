#include "protocol.hh"

#include <sstream>

#include "ops/operators.hh"
#include "support/logging.hh"

namespace amos {
namespace serve {

const char *
errorCodeName(ErrorCode code)
{
    switch (code) {
    case ErrorCode::BadRequest:
        return "bad_request";
    case ErrorCode::QueueFull:
        return "queue_full";
    case ErrorCode::DeadlineExceeded:
        return "deadline_exceeded";
    case ErrorCode::Cancelled:
        return "cancelled";
    case ErrorCode::ShuttingDown:
        return "shutting_down";
    case ErrorCode::Internal:
        return "internal";
    }
    return "internal";
}

std::int64_t
CompileRequest::dim(const std::string &key,
                    std::int64_t fallback) const
{
    auto it = dims.find(key);
    return it == dims.end() ? fallback : it->second;
}

std::string
CompileRequest::cacheKey() const
{
    // Operator shape + hardware (the TuningCache key) extended with
    // the search knobs: a deeper search is a different artifact.
    auto comp = computationFromRequest(*this);
    auto spec = hardwareFromRequest(*this);
    std::ostringstream key;
    key << TuningCache::keyFor(comp, spec) << "/g" << generations
        << "_s" << seed;
    // A warm-started exploration walks a different trajectory, so
    // the mode is part of the artifact's identity; "off" keeps the
    // historical key so persisted caches stay valid.
    if (!warmStart.empty() && warmStart != "off")
        key << "/w" << warmStart;
    return key.str();
}

Json
CompileRequest::toJson() const
{
    Json out = Json::object();
    out.set("type", Json("compile"));
    if (!id.empty())
        out.set("id", Json(id));
    out.set("op", Json(op));
    for (const auto &[key, value] : dims)
        out.set(key, Json(value));
    out.set("hw", Json(hw));
    if (dtype != "f16")
        out.set("dtype", Json(dtype));
    out.set("generations", Json(generations));
    out.set("seed", Json(static_cast<std::int64_t>(seed)));
    out.set("threads", Json(numThreads));
    if (deadlineMs > 0)
        out.set("deadline_ms", Json(deadlineMs));
    if (!traceId.empty())
        out.set("trace_id", Json(traceId));
    if (explain)
        out.set("explain", Json(true));
    if (!warmStart.empty())
        out.set("warm_start", Json(warmStart));
    return out;
}

CompileRequest
CompileRequest::fromJson(const Json &json)
{
    expect(json.kind() == Json::Kind::Object,
           "request: expected a JSON object");
    CompileRequest req;
    for (const auto &[key, value] : json.entries()) {
        if (key == "type") {
            expect(value.asString() == "compile",
                   "request: type must be 'compile', got '",
                   value.asString(), "'");
        } else if (key == "id") {
            req.id = value.kind() == Json::Kind::String
                         ? value.asString()
                         : value.dump();
        } else if (key == "op") {
            req.op = value.asString();
        } else if (key == "hw") {
            req.hw = value.asString();
        } else if (key == "dtype") {
            req.dtype = value.asString();
        } else if (key == "generations") {
            req.generations = static_cast<int>(value.asInt());
            expect(req.generations >= 1,
                   "request: generations must be >= 1");
        } else if (key == "seed") {
            req.seed = static_cast<std::uint64_t>(value.asInt());
        } else if (key == "threads") {
            req.numThreads = static_cast<int>(value.asInt());
        } else if (key == "deadline_ms") {
            req.deadlineMs = value.asNumber();
            expect(req.deadlineMs >= 0,
                   "request: deadline_ms must be >= 0");
        } else if (key == "trace_id") {
            req.traceId = value.kind() == Json::Kind::String
                              ? value.asString()
                              : value.dump();
        } else if (key == "explain") {
            req.explain = value.kind() == Json::Kind::Bool
                              ? value.asBool()
                              : value.asInt() != 0;
        } else if (key == "warm_start") {
            req.warmStart = value.asString();
            expect(warmStartModeFromName(req.warmStart).has_value(),
                   "request: unknown warm_start mode '",
                   req.warmStart, "' (off|neighbors|model|both)");
        } else {
            expect(value.kind() == Json::Kind::Number,
                   "request: unknown non-numeric field '", key, "'");
            req.dims[key] = value.asInt();
        }
    }
    return req;
}

namespace {

/** Retype the float base computation per the request's dtype knob. */
TensorComputation
applyRequestDtype(TensorComputation comp, const std::string &dtype)
{
    if (dtype == "f16")
        return comp;
    if (dtype == "f32") {
        std::vector<DataType> inputs(comp.inputs().size(),
                                     DataType::F32);
        return comp.withOperandDtypes(inputs, DataType::F32);
    }
    if (dtype == "bf16")
        return ops::bf16Variant(comp);
    if (dtype == "i8")
        return ops::quantizedVariant(comp, DataType::I8,
                                     DataType::I8);
    if (dtype == "u8i8")
        return ops::quantizedVariant(comp);
    fatal("unknown dtype '", dtype, "' (f16|f32|bf16|i8|u8i8)");
}

/** The float (f16) base computation a request's shape describes. */
TensorComputation
floatComputationFromRequest(const CompileRequest &req)
{
    ops::ConvParams pr;
    pr.batch = req.dim("batch", 1);
    pr.in_channels = req.dim("cin", 64);
    pr.out_channels = req.dim("cout", 64);
    pr.out_h = pr.out_w = req.dim("size", 14);
    pr.kernel_h = pr.kernel_w = req.dim("kernel", 3);
    pr.stride = req.dim("stride", 1);
    pr.dilation = req.dim("dilation", 1);

    if (req.op == "gemm")
        return ops::makeGemm(req.dim("m", 256), req.dim("n", 256),
                             req.dim("k", 256));
    if (req.op == "gemv")
        return ops::makeGemv(req.dim("m", 1024), req.dim("k", 1024));
    if (req.op == "conv1d")
        return ops::makeConv1d(pr.batch, pr.in_channels,
                               pr.out_channels, req.dim("size", 64),
                               pr.kernel_h, pr.stride);
    if (req.op == "conv2d")
        return ops::makeConv2d(pr);
    if (req.op == "conv3d")
        return ops::makeConv3d(pr, req.dim("depth", 8),
                               req.dim("kdepth", 3));
    if (req.op == "depthwise")
        return ops::makeDepthwiseConv2d(pr,
                                        req.dim("multiplier", 1));
    if (req.op == "group")
        return ops::makeGroupConv2d(pr, req.dim("groups", 4));
    if (req.op == "dilated")
        return ops::makeDilatedConv2d(pr);
    if (req.op == "transposed")
        return ops::makeTransposedConv2d(pr);
    fatal("unknown op '", req.op,
          "' (gemm|gemv|conv1d|conv2d|conv3d|depthwise|group|"
          "dilated|transposed)");
}

} // namespace

TensorComputation
computationFromRequest(const CompileRequest &req)
{
    return applyRequestDtype(floatComputationFromRequest(req),
                             req.dtype);
}

HardwareSpec
hardwareFromRequest(const CompileRequest &req)
{
    return hw::byName(req.hw);
}

TuneOptions
tuneOptionsFromRequest(const CompileRequest &req)
{
    TuneOptions options;
    options.generations = req.generations;
    options.seed = req.seed;
    options.numThreads = req.numThreads;
    if (!req.warmStart.empty()) {
        auto mode = warmStartModeFromName(req.warmStart);
        expect(mode.has_value(), "unknown warm_start mode '",
               req.warmStart, "' (off|neighbors|model|both)");
        options.warmStart.mode = *mode;
        if (options.warmStart.mode != WarmStartMode::Off)
            options.warmStart.patience = kWarmStartPatience;
    }
    return options;
}

Json
compileResultToJson(const CompileResult &result,
                    bool includePseudoCode)
{
    Json out = Json::object();
    out.set("tensorized", Json(result.tensorized));
    out.set("used_scalar_code", Json(result.usedScalarCode));
    out.set("cycles", Json(result.cycles));
    out.set("milliseconds", Json(result.milliseconds));
    out.set("gflops", Json(result.gflops));
    out.set("mappings_explored",
            Json(static_cast<std::int64_t>(
                result.mappingsExplored)));
    out.set("measurements", Json(result.measurements));
    out.set("mapping_signature", Json(result.mappingSignature));
    out.set("compute_mapping", Json(result.computeMapping));
    out.set("memory_mapping", Json(result.memoryMapping));
    if (includePseudoCode)
        out.set("pseudo_code", Json(result.pseudoCode));
    return out;
}

} // namespace serve
} // namespace amos
