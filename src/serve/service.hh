/**
 * @file
 * The long-lived compilation service: an admission-bounded
 * asynchronous request queue drained by a worker pool, with
 * in-flight coalescing, a tiered tuning cache, per-request
 * deadlines, and built-in counters/latency histograms.
 *
 * Request life cycle:
 *
 *   submit() ── cache hit ──────────────▶ ready ticket (memory/disk)
 *      │
 *      ├── identical exploration in flight ─▶ joins it (coalesced)
 *      │
 *      ├── admission bound hit ──────────▶ ready ticket (queue_full)
 *      │
 *      └── miss ─▶ job enqueued ─▶ worker explores ─▶ cache put
 *                                         └─▶ all waiters resolved
 *
 * wait() applies the per-request deadline: a waiter whose deadline
 * fires before the shared exploration finishes is answered with
 * deadline_exceeded, and once the *last* waiter abandons a job its
 * cancel token fires so the tuner unwinds instead of burning cycles
 * for nobody. Deadlines also bound queue wait: workers poll the
 * token before starting.
 *
 * Thread safety: every public member may be called from any thread.
 */

#ifndef AMOS_SERVE_SERVICE_HH
#define AMOS_SERVE_SERVICE_HH

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <future>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <thread>

#include "amos/amos.hh"
#include "serve/protocol.hh"
#include "serve/tiered_cache.hh"
#include "support/cancellation.hh"
#include "support/histogram.hh"
#include "support/metrics.hh"
#include "support/thread_pool.hh"

namespace amos {
namespace serve {

/** Service configuration. */
struct ServeOptions
{
    /// Compilation workers (0 = one per hardware thread).
    std::size_t workers = 2;
    /// Admission bound: distinct explorations queued or running
    /// before submits are shed with queue_full. Coalesced joins and
    /// cache hits never count against it.
    std::size_t maxQueue = 64;
    /// Cache tiers (memory capacity, disk directory, shards).
    TieredCache::Options cache;
    /// Preload the disk tier into memory at construction.
    bool warmOnStart = true;
    /// Period of the stats log line in ms (0 = disabled).
    double statsLogPeriodMs = 0.0;
};

/** Monotonic counters + latency summary, readable at any time. */
struct ServeStats
{
    std::uint64_t requests = 0;
    std::uint64_t memoryHits = 0;
    std::uint64_t diskHits = 0;
    std::uint64_t compiles = 0;     ///< explorations actually run
    std::uint64_t coalesced = 0;    ///< joins onto in-flight jobs
    std::uint64_t rejectedQueueFull = 0;
    std::uint64_t deadlineExceeded = 0;
    std::uint64_t cancelled = 0;
    std::uint64_t failures = 0;
    std::uint64_t warmedEntries = 0; ///< disk entries preloaded

    std::uint64_t latencyCount = 0;
    double meanMs = 0.0;
    double p50Ms = 0.0;
    double p95Ms = 0.0;
    double p99Ms = 0.0;

    /// Full unified-metrics snapshot (serve.* plus the cache tiers'
    /// cache.* counters) from the service's MetricsRegistry.
    std::map<std::string, std::uint64_t> metrics;

    Json toJson() const;
    /** One-line summary for the periodic log. */
    std::string summary() const;
};

/** Outcome of one served request. */
struct ServeOutcome
{
    bool ok = false;
    ErrorCode error = ErrorCode::Internal;
    std::string message;
    CompileResult result;
    /// "memory" | "disk" | "compile" | "coalesced".
    std::string servedBy;
    double latencyMs = 0.0;
    /// Span tree of this request (non-null only when the request
    /// carried a trace_id); serialised under "trace".
    Json trace;
    /// Explain report (non-null only when the request set
    /// "explain"); serialised under "explain".
    Json explain;

    /** Response line ({"id":..,"ok":..,...}). */
    Json toJson(const std::string &id) const;
};

/** The compilation service. */
class CompileService
{
  public:
    explicit CompileService(ServeOptions options);
    /** Drains before destruction. */
    ~CompileService();

    CompileService(const CompileService &) = delete;
    CompileService &operator=(const CompileService &) = delete;

    class Ticket;

    /**
     * Admit a request. Never blocks on compilation: cache hits and
     * rejections come back as already-resolved tickets; misses
     * enqueue (or join) an exploration the returned ticket waits on.
     */
    Ticket submit(const CompileRequest &req);

    /**
     * Block until the ticket's outcome is ready or its request
     * deadline fires, whichever is first.
     */
    ServeOutcome wait(Ticket &ticket);

    /** submit() + wait() in one call. */
    ServeOutcome serve(const CompileRequest &req);

    ServeStats stats() const;

    /** Unified registry the serve and cache counters live in. */
    MetricsRegistry &metrics() { return _metrics; }

    /**
     * Registry + request-latency summary in the Prometheus text
     * exposition format (the served `metrics` verb's body).
     */
    std::string prometheusText() const;

    /** True once drain() was called (the `healthz` verb's state). */
    bool draining() const;

    /**
     * Graceful shutdown: stop admitting (subsequent submits are
     * answered shutting_down), wait for every in-flight exploration
     * to resolve, and stop the stats logger. Idempotent.
     */
    void drain();

  private:
    struct Job;

    void runJob(std::shared_ptr<Job> job);
    void recordLatency(double ms);
    void statsLoggerLoop();

    ServeOptions _options;

    /// Unified registry; declared before the counters referencing it
    /// and before _cache, which registers its tier counters here.
    MetricsRegistry _metrics;
    MetricCounter &_requests;
    MetricCounter &_memoryHits;
    MetricCounter &_diskHits;
    MetricCounter &_compiles;
    MetricCounter &_coalesced;
    MetricCounter &_rejectedQueueFull;
    MetricCounter &_deadlineExceeded;
    MetricCounter &_cancelled;
    MetricCounter &_failures;
    MetricCounter &_warmedEntries;
    MetricGauge &_inflightGauge;

    TieredCache _cache;
    std::unique_ptr<ThreadPool> _pool;

    mutable std::mutex _mutex;
    std::condition_variable _idle;
    std::map<std::string, std::shared_ptr<Job>> _inflight;
    bool _draining = false;

    LatencyHistogram _latency;

    std::thread _statsLogger;
    std::mutex _loggerMutex;
    std::condition_variable _loggerCv;
    bool _loggerStop = false;
};

/** Handle to one submitted request (copyable; wait on any copy). */
class CompileService::Ticket
{
    friend class CompileService;

  public:
    Ticket() = default;

  private:
    using Clock = std::chrono::steady_clock;

    /// Resolved-at-submit outcome (hits, rejections); _job empty.
    ServeOutcome _immediate;
    bool _isImmediate = false;

    std::shared_ptr<Job> _job;
    bool _joiner = false;
    /// This waiter asked for an explain report; applied per ticket
    /// in wait(), so coalesced joiners each get their own shaping.
    bool _explain = false;
    /// Set once this ticket was answered deadline_exceeded (wait
    /// must not decrement the job's waiter count twice).
    bool _abandoned = false;

    Clock::time_point _start{};
    Clock::time_point _deadline = Clock::time_point::max();
};

} // namespace serve
} // namespace amos

#endif // AMOS_SERVE_SERVICE_HH
