/**
 * @file
 * The long-lived compilation service: an admission-bounded
 * asynchronous request queue drained by a worker pool, with
 * in-flight coalescing, a tiered tuning cache, per-request
 * deadlines, and built-in counters/latency histograms.
 *
 * Request life cycle:
 *
 *   submit() ── cache hit ──────────────▶ ready ticket (memory/disk)
 *      │
 *      ├── identical exploration in flight ─▶ joins it (coalesced)
 *      │
 *      ├── admission bound hit ──────────▶ ready ticket (queue_full)
 *      │
 *      └── miss ─▶ job enqueued ─▶ worker explores ─▶ cache put
 *                                         └─▶ all waiters resolved
 *
 * wait() applies the per-request deadline: a waiter whose deadline
 * fires before the shared exploration finishes is answered with
 * deadline_exceeded, and once the *last* waiter abandons a job its
 * cancel token fires so the tuner unwinds instead of burning cycles
 * for nobody. Deadlines also bound queue wait: workers poll the
 * token before starting.
 *
 * Thread safety: every public member may be called from any thread.
 */

#ifndef AMOS_SERVE_SERVICE_HH
#define AMOS_SERVE_SERVICE_HH

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <future>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "amos/amos.hh"
#include "explore/warm_start.hh"
#include "serve/protocol.hh"
#include "serve/tiered_cache.hh"
#include "support/cancellation.hh"
#include "support/histogram.hh"
#include "support/metrics.hh"
#include "support/thread_pool.hh"

namespace amos {
namespace serve {

/** Service configuration. */
struct ServeOptions
{
    /// Compilation workers (0 = one per hardware thread).
    std::size_t workers = 2;
    /// Admission bound: distinct explorations queued or running
    /// before submits are shed with queue_full. Coalesced joins and
    /// cache hits never count against it.
    std::size_t maxQueue = 64;
    /// Cache tiers (memory capacity, disk directory, shards).
    TieredCache::Options cache;
    /// Preload the disk tier into memory at construction.
    bool warmOnStart = true;
    /// Period of the stats log line in ms (0 = disabled).
    double statsLogPeriodMs = 0.0;
    /// Slow-request threshold for tail-based retention, ms. A
    /// request slower than this gets a postmortem in the slowlog.
    /// <= 0 selects the adaptive default: 2x the windowed p99 (floor
    /// 5 ms) once the window holds enough samples to mean anything.
    double slowMs = 0.0;
    /// Bounded postmortem capacity; the oldest entry is evicted.
    std::size_t slowlogSize = 32;
    /// SLO error budget: tolerated fraction of windowed requests
    /// slower than the slow threshold. Burn rate = fraction/budget.
    double sloErrorBudget = 0.01;
    /// Default warm-start mode for requests that do not carry a
    /// "warm_start" field of their own.
    WarmStartMode warmStart = WarmStartMode::Off;
    /// Learned-model snapshot preloaded at construction (empty =
    /// none). A bad file degrades to analytic screening with a
    /// warning; reload_model can hot-swap it later.
    std::string modelSnapshotPath;
};

/** Monotonic counters + latency summary, readable at any time. */
struct ServeStats
{
    std::uint64_t requests = 0;
    std::uint64_t memoryHits = 0;
    std::uint64_t diskHits = 0;
    std::uint64_t compiles = 0;     ///< explorations actually run
    std::uint64_t coalesced = 0;    ///< joins onto in-flight jobs
    std::uint64_t rejectedQueueFull = 0;
    std::uint64_t deadlineExceeded = 0;
    std::uint64_t cancelled = 0;
    std::uint64_t failures = 0;
    std::uint64_t warmedEntries = 0; ///< disk entries preloaded
    std::uint64_t slowRequests = 0;  ///< breached the slow threshold
    std::uint64_t slowlogRecorded = 0; ///< postmortems ever recorded

    std::uint64_t latencyCount = 0;
    double meanMs = 0.0;
    double p50Ms = 0.0;
    double p95Ms = 0.0;
    double p99Ms = 0.0;

    /// Sliding-window (last ~60 s) view + SLO state.
    std::uint64_t windowCount = 0;
    double windowP50Ms = 0.0;
    double windowP95Ms = 0.0;
    double windowP99Ms = 0.0;
    double slowThresholdMs = 0.0; ///< effective (fixed or adaptive)
    double sloBurnRate = 0.0;

    /// Full unified-metrics snapshot (serve.* plus the cache tiers'
    /// cache.* counters) from the service's MetricsRegistry.
    std::map<std::string, std::uint64_t> metrics;

    Json toJson() const;
    /** One-line summary for the periodic log. */
    std::string summary() const;
};

/** Outcome of one served request. */
struct ServeOutcome
{
    bool ok = false;
    ErrorCode error = ErrorCode::Internal;
    std::string message;
    CompileResult result;
    /// "memory" | "disk" | "compile" | "coalesced".
    std::string servedBy;
    double latencyMs = 0.0;
    /// Admission-to-worker-start wait of the exploration that served
    /// this request (0 for cache hits and rejections).
    double queueWaitMs = 0.0;
    /// Span tree of this request (non-null only when the request
    /// carried a trace_id); serialised under "trace".
    Json trace;
    /// Explain report (non-null only when the request set
    /// "explain"); serialised under "explain".
    Json explain;

    /** Response line ({"id":..,"ok":..,...}). */
    Json toJson(const std::string &id) const;
};

/** The compilation service. */
class CompileService
{
  public:
    explicit CompileService(ServeOptions options);
    /** Drains before destruction. */
    ~CompileService();

    CompileService(const CompileService &) = delete;
    CompileService &operator=(const CompileService &) = delete;

    class Ticket;

    /**
     * Admit a request. Never blocks on compilation: cache hits and
     * rejections come back as already-resolved tickets; misses
     * enqueue (or join) an exploration the returned ticket waits on.
     */
    Ticket submit(const CompileRequest &req);

    /**
     * Block until the ticket's outcome is ready or its request
     * deadline fires, whichever is first.
     */
    ServeOutcome wait(Ticket &ticket);

    /** submit() + wait() in one call. */
    ServeOutcome serve(const CompileRequest &req);

    ServeStats stats() const;

    /** Unified registry the serve and cache counters live in. */
    MetricsRegistry &metrics() { return _metrics; }

    /**
     * Registry + request-latency summary in the Prometheus text
     * exposition format (the served `metrics` verb's body). Includes
     * the queue-wait summary and the windowed latency quantiles.
     */
    std::string prometheusText() const;

    /**
     * The effective slow threshold in ms: options.slowMs when
     * positive, otherwise 2x the windowed p99 (floor 5 ms) once the
     * window holds >= 50 samples, otherwise 0 (latency-based
     * retention off; errors and sheds are still retained).
     */
    double slowThresholdMs() const;

    /**
     * The bounded postmortem slowlog (the `slowlog` verb's body),
     * most recent first: {"count":<recorded ever>,"postmortems":
     * [{flight_seq,id,reason,latency_ms,queue_wait_ms,served_by,
     * slow_threshold_ms,admission:{inflight,queue_depth},
     * metrics_delta:{..},trace:{flight_seq,spans:[..]}},..]}.
     * `limit` caps the entries returned (0 = all retained).
     */
    Json slowlogJson(std::size_t limit = 0) const;

    /**
     * Write the flight recorder's full ring contents to `path` (the
     * `flightdump` verb); returns {"ok":..,"path":..,"records":N}.
     */
    Json flightDump(const std::string &path) const;

    /**
     * Hot-swap the learned-model snapshot (the `reload_model` verb).
     * In-flight explorations keep the snapshot they started with;
     * fresh requests pick up the new one. A bad file is a structured
     * error ({"ok":false,"error":...}) and leaves the current
     * snapshot untouched — never a crash.
     */
    Json reloadModel(const std::string &path);

    /** The current snapshot (null when none is loaded). */
    std::shared_ptr<const LearnedModel> modelSnapshot() const;

    /** True once drain() was called (the `healthz` verb's state). */
    bool draining() const;

    /**
     * Graceful shutdown: stop admitting (subsequent submits are
     * answered shutting_down), wait for every in-flight exploration
     * to resolve, and stop the stats logger. Idempotent.
     */
    void drain();

  private:
    struct Job;

    /// Gauges and counter values captured when a request was
    /// admitted; a postmortem reports them plus the counter delta
    /// accumulated while the request was in the system.
    struct Admission
    {
        double inflight = 0.0;
        std::size_t queueDepth = 0;
        std::vector<std::uint64_t> counters; // parallel _counterRefs
    };

    void runJob(std::shared_ptr<Job> job);
    void recordLatency(double ms);
    /**
     * Tail-based retention: decide *after* the outcome is known
     * whether this request deserves a postmortem (slow / error /
     * shed / deadline) and, if so, harvest its flight records into
     * the slowlog.
     */
    void maybeRetain(const Ticket &ticket,
                     const ServeOutcome &outcome);
    void statsLoggerLoop();

    ServeOptions _options;

    /// Unified registry; declared before the counters referencing it
    /// and before _cache, which registers its tier counters here.
    MetricsRegistry _metrics;
    MetricCounter &_requests;
    MetricCounter &_memoryHits;
    MetricCounter &_diskHits;
    MetricCounter &_compiles;
    MetricCounter &_coalesced;
    MetricCounter &_rejectedQueueFull;
    MetricCounter &_deadlineExceeded;
    MetricCounter &_cancelled;
    MetricCounter &_failures;
    MetricCounter &_warmedEntries;
    MetricCounter &_slowRequests;
    MetricCounter &_slowlogRecorded;
    MetricGauge &_inflightGauge;
    MetricGauge &_windowP99Gauge;
    MetricGauge &_slowThresholdGauge;
    MetricGauge &_sloBurnGauge;
    MetricCounter &_warmSeeded;
    MetricCounter &_warmNeighbors;
    MetricCounter &_modelReloads;

    /// Swapped atomically under _modelMutex by reloadModel; readers
    /// take a shared_ptr copy, so a reload never invalidates an
    /// in-flight exploration's snapshot.
    mutable std::mutex _modelMutex;
    std::shared_ptr<const LearnedModel> _model;

    TieredCache _cache;
    std::unique_ptr<ThreadPool> _pool;

    mutable std::mutex _mutex;
    std::condition_variable _idle;
    std::map<std::string, std::shared_ptr<Job>> _inflight;
    bool _draining = false;

    LatencyHistogram _latency;
    LatencyHistogram _queueWait;
    SlidingWindowHistogram _window;

    /// (name, counter) list resolved once at the end of the
    /// constructor — every serve.* and cache.* counter exists by
    /// then — so admission snapshots are a vector of relaxed loads
    /// instead of a map allocation per request.
    std::vector<std::pair<std::string, const MetricCounter *>>
        _counterRefs;

    mutable std::mutex _slowlogMutex;
    std::deque<Json> _slowlog;
    std::uint64_t _slowlogTotal = 0; ///< recorded ever (not evicted)

    std::thread _statsLogger;
    std::mutex _loggerMutex;
    std::condition_variable _loggerCv;
    bool _loggerStop = false;
};

/** Handle to one submitted request (copyable; wait on any copy). */
class CompileService::Ticket
{
    friend class CompileService;

  public:
    Ticket() = default;

  private:
    using Clock = std::chrono::steady_clock;

    /// Resolved-at-submit outcome (hits, rejections); _job empty.
    ServeOutcome _immediate;
    bool _isImmediate = false;

    std::shared_ptr<Job> _job;
    bool _joiner = false;
    /// This waiter asked for an explain report; applied per ticket
    /// in wait(), so coalesced joiners each get their own shaping.
    bool _explain = false;
    /// Set once this ticket was answered deadline_exceeded (wait
    /// must not decrement the job's waiter count twice).
    bool _abandoned = false;

    /// Request id echoed into the postmortem.
    std::string _id;
    /// Flight-recorder sequence whose records describe this request
    /// (the shared job's sequence for coalesced joiners, so their
    /// postmortems carry the exploration they actually waited on).
    std::uint64_t _flightSeq = 0;
    /// Gauges + counter values at admission (postmortem context).
    Admission _admission;

    Clock::time_point _start{};
    Clock::time_point _deadline = Clock::time_point::max();
};

} // namespace serve
} // namespace amos

#endif // AMOS_SERVE_SERVICE_HH
