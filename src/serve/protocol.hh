/**
 * @file
 * Wire protocol of the compilation service: newline-delimited JSON
 * request and response objects, plus the translation from a request
 * to the compiler inputs (TensorComputation, HardwareSpec,
 * TuneOptions) it describes.
 *
 * Request (one JSON object per line):
 *
 *   {"type":"compile","id":"r1","op":"gemm","m":256,"n":256,
 *    "k":256,"hw":"v100","generations":4,"seed":2022,
 *    "deadline_ms":5000}
 *   {"type":"stats"}
 *   {"type":"slowlog","limit":5}
 *   {"type":"flightdump","path":"/tmp/flight.json"}
 *   {"type":"shutdown"}
 *
 * Control verbs: "stats" (counters + windowed latency), "metrics"
 * (Prometheus exposition), "healthz", "slowlog" (retained
 * slow-request postmortems, most recent first), "flightdump"
 * (write the flight-recorder rings to a file on the server),
 * "reload_model" (hot-swap the learned-model snapshot used for
 * warm-started screening; {"type":"reload_model","path":...}).
 *
 * Response (one JSON object per line, correlated by "id"):
 *
 *   {"id":"r1","ok":true,"served_by":"compile","latency_ms":812.4,
 *    "result":{...}}
 *   {"id":"r1","ok":false,
 *    "error":{"code":"queue_full","message":"..."}}
 *
 * The same CompileResult serialiser backs `amos_cli --json`, so a
 * script can switch between the one-shot CLI and the server without
 * changing its parser. See docs/serving.md for the full schema.
 */

#ifndef AMOS_SERVE_PROTOCOL_HH
#define AMOS_SERVE_PROTOCOL_HH

#include <cstdint>
#include <map>
#include <string>

#include "amos/amos.hh"
#include "support/json.hh"

namespace amos {
namespace serve {

/** Typed rejection reasons a request can be answered with. */
enum class ErrorCode
{
    BadRequest,       ///< malformed JSON or unknown op/hw
    QueueFull,        ///< admission bound hit (load shedding)
    DeadlineExceeded, ///< per-request deadline fired
    Cancelled,        ///< exploration abandoned by all waiters
    ShuttingDown,     ///< submitted during/after drain
    Internal,         ///< unexpected failure inside the compiler
};

/** Wire name of an error code ("queue_full", ...). */
const char *errorCodeName(ErrorCode code);

/**
 * One compilation request: an operator family plus its dimensions,
 * a hardware target, and the tuning knobs that shape the search.
 */
struct CompileRequest
{
    /// Echoed verbatim in the response for correlation.
    std::string id;

    /// Operator family: gemm|gemv|conv1d|conv2d|conv3d|depthwise|
    /// group|dilated|transposed.
    std::string op = "conv2d";

    /// Dimension knobs (m/n/k, batch/cin/cout/size/kernel/stride/
    /// dilation/depth/kdepth/multiplier/groups); absent keys take
    /// the same defaults as amos_cli.
    std::map<std::string, std::int64_t> dims;

    std::string hw = "v100";

    /// Operand typing: f16 (default) | f32 | bf16 (bf16 inputs, f32
    /// accumulator) | i8 (symmetric i8xi8) | u8i8 (asymmetric
    /// activations x symmetric weights). Quantized typings carry i32
    /// accumulators; dtype-illegal target intrinsics are simply not
    /// matched (docs/abstraction.md).
    std::string dtype = "f16";

    int generations = 8;
    std::uint64_t seed = 2022;
    /// Tuner-internal threads; the service defaults to 1 because its
    /// parallelism comes from serving many requests at once.
    int numThreads = 1;

    /// Wall-clock budget in milliseconds (0 = none). Covers queue
    /// wait and exploration; an expired request is answered with
    /// deadline_exceeded.
    double deadlineMs = 0.0;

    /// Distributed-tracing id ("trace_id" on the wire). A non-empty
    /// id asks the service to record a span tree for this request
    /// and attach it to the response; like deadline_ms/threads it
    /// does not affect the cache key.
    std::string traceId;

    /// Opt-in explainability: when set, the response carries an
    /// "explain" object (bottleneck attribution, roofline, search
    /// telemetry — see docs/observability.md). Pure output shaping,
    /// so it is excluded from the cache key like trace_id.
    bool explain = false;

    /// Warm-start mode ("warm_start" on the wire):
    /// off|neighbors|model|both, or empty to take the server's
    /// default. Warm start steers the search, so a non-off mode
    /// joins the cache key (docs/exploration.md).
    std::string warmStart;

    /** Dimension value with an amos_cli-compatible default. */
    std::int64_t dim(const std::string &key,
                     std::int64_t fallback) const;

    /**
     * Identity of the exploration this request names: hardware,
     * operator shape, and the tune options that change the search
     * outcome. Two requests with equal keys coalesce and share
     * cache entries.
     */
    std::string cacheKey() const;

    Json toJson() const;
    /** Raises fatal() on malformed input. */
    static CompileRequest fromJson(const Json &json);
};

/** Build the computation a request describes (fatal on bad op). */
TensorComputation computationFromRequest(const CompileRequest &req);

/** Resolve the hardware target (fatal on bad name). */
HardwareSpec hardwareFromRequest(const CompileRequest &req);

/** Tune options carrying the request's search knobs. */
TuneOptions tuneOptionsFromRequest(const CompileRequest &req);

/**
 * Machine-readable CompileResult (shared between the serve protocol
 * and `amos_cli --json`). Omits the pseudo-code listing unless
 * includePseudoCode is set.
 */
Json compileResultToJson(const CompileResult &result,
                         bool includePseudoCode = false);

} // namespace serve
} // namespace amos

#endif // AMOS_SERVE_PROTOCOL_HH
