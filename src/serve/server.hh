/**
 * @file
 * Line-protocol front end of the compilation service: reads one
 * JSON request per line, writes one JSON response per line (order
 * not guaranteed — correlate by "id"), plus a deterministic
 * batch-replay mode that feeds a recorded request trace through the
 * service for benchmarking and CI smoke tests.
 */

#ifndef AMOS_SERVE_SERVER_HH
#define AMOS_SERVE_SERVER_HH

#include <atomic>
#include <istream>
#include <ostream>
#include <string>

#include "serve/service.hh"

namespace amos {
namespace serve {

/**
 * Serve newline-delimited JSON requests from `in`, writing
 * responses to `out`. Compile responses are produced by responder
 * tasks as their explorations finish, so a slow exploration never
 * blocks later requests; "stats" is answered inline; "shutdown" (or
 * EOF, or `stop` turning true) ends the loop. Pending responses are
 * flushed and the service drained before returning.
 *
 * Returns the number of protocol-level errors (unparseable lines).
 */
int serveStream(CompileService &service, std::istream &in,
                std::ostream &out,
                const std::atomic<bool> *stop = nullptr);

/**
 * Replay a request trace: a file of newline-delimited JSON compile
 * requests (blank lines and '#' comments skipped). Requests are
 * served strictly in order — deterministic cache behaviour — with
 * one response line each, followed by a final stats line.
 *
 * Returns the number of failed requests.
 */
int replayTrace(CompileService &service, const std::string &path,
                std::ostream &out);

} // namespace serve
} // namespace amos

#endif // AMOS_SERVE_SERVER_HH
