#include "tiered_cache.hh"

#include <filesystem>
#include <functional>

#include "support/logging.hh"

namespace amos {
namespace serve {

TieredCache::TieredCache(Options options, MetricsRegistry *registry)
    : _options(std::move(options)),
      _ownMetrics(registry ? nullptr
                           : std::make_unique<MetricsRegistry>()),
      _metrics(registry ? registry : _ownMetrics.get()),
      _memoryHits(_metrics->counter("cache.memory_hits")),
      _diskHits(_metrics->counter("cache.disk_hits")),
      _misses(_metrics->counter("cache.misses")),
      _puts(_metrics->counter("cache.puts")),
      _promotions(_metrics->counter("cache.promotions")),
      _memory(_options.memoryCapacity)
{
    if (_options.diskShards == 0)
        _options.diskShards = 1;
    if (hasDisk()) {
        std::filesystem::create_directories(_options.diskDir);
        for (std::size_t s = 0; s < _options.diskShards; ++s)
            _shardMutexes.push_back(std::make_unique<std::mutex>());
    }
}

std::size_t
TieredCache::memorySize() const
{
    std::lock_guard<std::mutex> lock(_memMutex);
    return _memory.size();
}

std::size_t
TieredCache::shardOf(const std::string &key) const
{
    return std::hash<std::string>{}(key) % _options.diskShards;
}

std::string
TieredCache::shardPath(std::size_t shard) const
{
    return _options.diskDir + "/shard-" + std::to_string(shard) +
           ".json";
}

std::optional<CacheEntry>
TieredCache::get(const std::string &key, Tier *tier)
{
    if (tier)
        *tier = Tier::None;
    {
        std::lock_guard<std::mutex> lock(_memMutex);
        if (auto hit = _memory.get(key)) {
            if (tier)
                *tier = Tier::Memory;
            _memoryHits.add();
            return hit;
        }
    }
    if (!hasDisk()) {
        _misses.add();
        return std::nullopt;
    }

    std::size_t shard = shardOf(key);
    std::optional<CacheEntry> found;
    {
        std::lock_guard<std::mutex> lock(*_shardMutexes[shard]);
        auto store = TuningCache::loadFileIfExists(shardPath(shard));
        found = store.tryGet(key);
    }
    if (!found) {
        _misses.add();
        return std::nullopt;
    }
    if (tier)
        *tier = Tier::Disk;
    _diskHits.add();
    _promotions.add();
    std::lock_guard<std::mutex> lock(_memMutex);
    _memory.put(key, *found);
    return found;
}

void
TieredCache::put(const std::string &key, const CacheEntry &entry)
{
    _puts.add();
    {
        std::lock_guard<std::mutex> lock(_memMutex);
        _memory.put(key, entry);
    }
    if (!hasDisk())
        return;
    std::size_t shard = shardOf(key);
    std::lock_guard<std::mutex> lock(*_shardMutexes[shard]);
    // Read-modify-write of one shard under its mutex; saveFile's
    // temp+rename keeps concurrent processes from seeing torn files.
    auto store = TuningCache::loadFileIfExists(shardPath(shard));
    store.insert(key, entry);
    store.saveFile(shardPath(shard));
}

std::size_t
TieredCache::warm()
{
    if (!hasDisk())
        return 0;
    std::size_t loaded = 0;
    for (std::size_t s = 0; s < _options.diskShards; ++s) {
        std::vector<std::pair<std::string, CacheEntry>> entries;
        {
            std::lock_guard<std::mutex> lock(*_shardMutexes[s]);
            entries = TuningCache::loadFileIfExists(shardPath(s))
                          .snapshot();
        }
        std::lock_guard<std::mutex> lock(_memMutex);
        for (auto &[key, entry] : entries) {
            _memory.put(key, std::move(entry));
            ++loaded;
        }
    }
    return loaded;
}

std::vector<std::pair<std::string, CacheEntry>>
TieredCache::snapshotMemory() const
{
    std::lock_guard<std::mutex> lock(_memMutex);
    return _memory.items();
}

std::size_t
TieredCache::diskSize() const
{
    if (!hasDisk())
        return 0;
    std::size_t total = 0;
    for (std::size_t s = 0; s < _options.diskShards; ++s) {
        std::lock_guard<std::mutex> lock(*_shardMutexes[s]);
        total +=
            TuningCache::loadFileIfExists(shardPath(s)).size();
    }
    return total;
}

} // namespace serve
} // namespace amos
