/**
 * @file
 * Two-tier tuning cache for the compilation service.
 *
 * Tier 1 is a bounded in-memory LRU of CacheEntry values (hot
 * working set, lock-free of I/O). Tier 2 is a sharded on-disk store:
 * keys hash across N shard files, each an ordinary TuningCache JSON
 * document written with the crash-safe temp+rename protocol, so a
 * restarted server warms its memory tier from whatever the previous
 * process persisted. A disk hit is promoted into the memory tier.
 *
 * Sharding keeps both the write amplification (one insert rewrites
 * one shard, not the whole store) and the lock granularity (per
 * shard) proportional to 1/N.
 */

#ifndef AMOS_SERVE_TIERED_CACHE_HH
#define AMOS_SERVE_TIERED_CACHE_HH

#include <cstddef>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <vector>

#include "amos/cache.hh"
#include "support/lru.hh"
#include "support/metrics.hh"

namespace amos {
namespace serve {

/** In-memory LRU over a sharded on-disk TuningCache store. */
class TieredCache
{
  public:
    struct Options
    {
        /// Memory-tier entry bound (0 = unbounded).
        std::size_t memoryCapacity = 256;
        /// Disk-tier directory; empty disables the disk tier.
        std::string diskDir;
        /// Shard-file count of the disk tier.
        std::size_t diskShards = 8;
    };

    /** Which tier answered a get(). */
    enum class Tier
    {
        None,
        Memory,
        Disk,
    };

    /**
     * `registry` (when given) receives the tier counters
     * (cache.memory_hits, cache.disk_hits, cache.misses, cache.puts,
     * cache.promotions); without one the cache counts into a private
     * registry reachable through metrics(). The registry must outlive
     * the cache.
     */
    explicit TieredCache(Options options,
                         MetricsRegistry *registry = nullptr);

    /** The registry the tier counters live in. */
    MetricsRegistry &metrics() { return *_metrics; }

    bool hasDisk() const { return !_options.diskDir.empty(); }
    std::size_t memorySize() const;

    /**
     * Look a key up, memory tier first; a disk hit is promoted into
     * memory. `tier` (when given) reports which tier answered.
     */
    std::optional<CacheEntry> get(const std::string &key,
                                  Tier *tier = nullptr);

    /** Insert into the memory tier and persist to the disk shard. */
    void put(const std::string &key, const CacheEntry &entry);

    /**
     * Preload every disk shard into the memory tier (up to its
     * capacity); returns the number of entries loaded. Called once
     * at server start.
     */
    std::size_t warm();

    /** Total entries across all disk shards (0 without a disk). */
    std::size_t diskSize() const;

    /**
     * Copy of the memory tier's (key, entry) pairs, taken under one
     * lock acquisition. Warm-start donor scans run over this copy —
     * never compute feature distances while holding the cache mutex
     * (it sits on the serve hot path).
     */
    std::vector<std::pair<std::string, CacheEntry>>
    snapshotMemory() const;

  private:
    std::size_t shardOf(const std::string &key) const;
    std::string shardPath(std::size_t shard) const;

    Options _options;

    /// Private fallback registry when none is injected.
    std::unique_ptr<MetricsRegistry> _ownMetrics;
    MetricsRegistry *_metrics;
    MetricCounter &_memoryHits;
    MetricCounter &_diskHits;
    MetricCounter &_misses;
    MetricCounter &_puts;
    MetricCounter &_promotions;

    mutable std::mutex _memMutex;
    LruMap<std::string, CacheEntry> _memory;

    /// One lock per shard file serialises its read-modify-write.
    std::vector<std::unique_ptr<std::mutex>> _shardMutexes;
};

} // namespace serve
} // namespace amos

#endif // AMOS_SERVE_TIERED_CACHE_HH
