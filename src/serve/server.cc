#include "server.hh"

#include <algorithm>
#include <fstream>
#include <future>
#include <mutex>
#include <vector>

#include "support/logging.hh"

namespace amos {
namespace serve {

namespace {

/** Serialised writer: one response line per call, flushed. */
class LineWriter
{
  public:
    explicit LineWriter(std::ostream &out) : _out(out) {}

    void
    write(const Json &json)
    {
        std::lock_guard<std::mutex> lock(_mutex);
        _out << json.dump() << "\n";
        _out.flush();
    }

  private:
    std::ostream &_out;
    std::mutex _mutex;
};

/**
 * Admission bound on one request line: a line longer than this is
 * answered with a typed bad_request instead of being parsed, so a
 * runaway (or adversarial) client cannot make the server buffer and
 * parse an arbitrarily large document.
 */
constexpr std::size_t kMaxRequestBytes = 1 << 20; // 1 MiB

Json
protocolError(const std::string &id, const std::string &message)
{
    Json err = Json::object();
    err.set("code", Json(errorCodeName(ErrorCode::BadRequest)));
    err.set("message", Json(message));
    Json out = Json::object();
    if (!id.empty())
        out.set("id", Json(id));
    out.set("ok", Json(false));
    out.set("error", std::move(err));
    return out;
}

bool
isControlVerb(const std::string &type)
{
    return type == "stats" || type == "metrics" ||
           type == "healthz" || type == "slowlog" ||
           type == "flightdump" || type == "reload_model";
}

/**
 * Answer one of the side-channel verbs shared by the live stream
 * and trace replay: "stats" (JSON counters), "metrics" (Prometheus
 * text exposition carried in "body"), "healthz" (liveness + drain
 * state), "slowlog" (retained postmortems, optional "limit"
 * parameter), "flightdump" (write the flight rings to "path"),
 * "reload_model" (hot-swap the warm-start model snapshot from
 * "path"). `request` is the parsed request line, for verb
 * parameters.
 */
Json
controlResponse(CompileService &service, const std::string &type,
                const std::string &id, const Json &request)
{
    Json response = Json::object();
    if (!id.empty())
        response.set("id", Json(id));
    response.set("ok", Json(true));
    if (type == "stats") {
        response.set("stats", service.stats().toJson());
    } else if (type == "metrics") {
        response.set("content_type",
                     Json("text/plain; version=0.0.4"));
        response.set("body", Json(service.prometheusText()));
    } else if (type == "slowlog") {
        std::size_t limit = 0;
        if (request.has("limit"))
            limit = static_cast<std::size_t>(
                std::max<std::int64_t>(
                    0, request.get("limit").asInt()));
        response.set("slowlog", service.slowlogJson(limit));
    } else if (type == "flightdump") {
        if (!request.has("path"))
            return protocolError(
                id, "flightdump requires a \"path\" parameter");
        Json result =
            service.flightDump(request.get("path").asString());
        bool ok = result.has("ok") && result.get("ok").asBool();
        response.set("ok", Json(ok));
        response.set("flightdump", std::move(result));
    } else if (type == "reload_model") {
        if (!request.has("path"))
            return protocolError(
                id, "reload_model requires a \"path\" parameter");
        Json result =
            service.reloadModel(request.get("path").asString());
        bool ok = result.has("ok") && result.get("ok").asBool();
        response.set("ok", Json(ok));
        response.set("reload_model", std::move(result));
    } else { // healthz
        bool draining = service.draining();
        response.set("status",
                     Json(draining ? "draining" : "serving"));
        response.set("draining", Json(draining));
    }
    return response;
}

} // namespace

int
serveStream(CompileService &service, std::istream &in,
            std::ostream &out, const std::atomic<bool> *stop)
{
    LineWriter writer(out);
    // Responders block in wait(); size them past the service's
    // workers so finished explorations never queue behind waits.
    ThreadPool responders(ThreadPool::resolveThreads(0) + 2);
    std::vector<std::future<void>> pending;
    int protocol_errors = 0;

    std::string line;
    while (!(stop && stop->load(std::memory_order_relaxed)) &&
           std::getline(in, line)) {
        if (line.empty())
            continue;
        if (line.size() > kMaxRequestBytes) {
            ++protocol_errors;
            writer.write(protocolError(
                "", "request line of " +
                        std::to_string(line.size()) +
                        " bytes exceeds the " +
                        std::to_string(kMaxRequestBytes) +
                        "-byte bound"));
            continue;
        }

        Json request;
        std::string type;
        std::string id;
        try {
            request = Json::parse(line);
            expect(request.kind() == Json::Kind::Object,
                   "request: expected a JSON object");
            if (request.has("id"))
                id = request.get("id").kind() ==
                             Json::Kind::String
                         ? request.get("id").asString()
                         : request.get("id").dump();
            type = request.has("type")
                       ? request.get("type").asString()
                       : "compile";
        } catch (const std::exception &e) {
            ++protocol_errors;
            writer.write(protocolError(id, e.what()));
            continue;
        }

        if (type == "shutdown")
            break;
        if (isControlVerb(type)) {
            writer.write(
                controlResponse(service, type, id, request));
            continue;
        }
        if (type != "compile") {
            ++protocol_errors;
            writer.write(protocolError(
                id, "unknown request type '" + type + "'"));
            continue;
        }

        CompileRequest req;
        try {
            req = CompileRequest::fromJson(request);
        } catch (const std::exception &e) {
            ++protocol_errors;
            writer.write(protocolError(id, e.what()));
            continue;
        }

        auto ticket = service.submit(req);
        pending.push_back(responders.submit(
            [&service, &writer, ticket, req]() mutable {
                auto outcome = service.wait(ticket);
                writer.write(outcome.toJson(req.id));
            }));

        // Prune finished responders so a long-lived server's
        // bookkeeping stays bounded.
        if (pending.size() >= 64) {
            std::vector<std::future<void>> alive;
            for (auto &f : pending) {
                if (f.wait_for(std::chrono::seconds(0)) !=
                    std::future_status::ready)
                    alive.push_back(std::move(f));
                else
                    f.get();
            }
            pending = std::move(alive);
        }
    }

    for (auto &f : pending)
        f.get();
    service.drain();
    return protocol_errors;
}

int
replayTrace(CompileService &service, const std::string &path,
            std::ostream &out)
{
    std::ifstream trace(path);
    expect(trace.good(), "replay: cannot read trace file ", path);

    LineWriter writer(out);
    int failed = 0;
    std::string line;
    while (std::getline(trace, line)) {
        if (line.empty() || line[0] == '#')
            continue;
        if (line.size() > kMaxRequestBytes) {
            ++failed;
            writer.write(protocolError(
                "", "request line of " +
                        std::to_string(line.size()) +
                        " bytes exceeds the " +
                        std::to_string(kMaxRequestBytes) +
                        "-byte bound"));
            continue;
        }
        CompileRequest req;
        try {
            Json request = Json::parse(line);
            expect(request.kind() == Json::Kind::Object,
                   "request: expected a JSON object");
            std::string type =
                request.has("type")
                    ? request.get("type").asString()
                    : "compile";
            if (isControlVerb(type)) {
                std::string id;
                if (request.has("id"))
                    id = request.get("id").kind() ==
                                 Json::Kind::String
                             ? request.get("id").asString()
                             : request.get("id").dump();
                writer.write(
                    controlResponse(service, type, id, request));
                continue;
            }
            if (type == "shutdown")
                continue; // replay drains at end-of-trace anyway
            req = CompileRequest::fromJson(request);
        } catch (const std::exception &e) {
            ++failed;
            writer.write(protocolError("", e.what()));
            continue;
        }
        auto outcome = service.serve(req);
        if (!outcome.ok)
            ++failed;
        writer.write(outcome.toJson(req.id));
    }

    Json final_stats = Json::object();
    final_stats.set("ok", Json(true));
    final_stats.set("stats", service.stats().toJson());
    writer.write(final_stats);
    return failed;
}

} // namespace serve
} // namespace amos
