/**
 * @file
 * TensorComputation: the "software definition" of Sec. 4.3 of the
 * AMOS paper — a perfectly nested loop over iteration variables with
 * a single reduction statement
 *     out[outIdx...] (+)= combine(in_1[idx_1...], in_2[idx_2...])
 * where every index is an affine expression of the iterators.
 *
 * All evaluation workloads (GEMM, convolutions, scan, ...) are
 * instances of this class; the mapping machinery consumes it to build
 * software iterations and access matrices.
 */

#ifndef AMOS_TENSOR_COMPUTATION_HH
#define AMOS_TENSOR_COMPUTATION_HH

#include <cstdint>
#include <string>
#include <vector>

#include "ir/expr.hh"
#include "tensor/tensor.hh"

namespace amos {

/** Classification of a loop iterator. */
enum class IterKind
{
    Spatial,   ///< appears in the output index (parallelisable)
    Reduction, ///< reduced over (appears only in inputs)
};

/** A loop iterator: variable handle, extent, and classification. */
struct IterVar
{
    Var var;
    std::int64_t extent = 0;
    IterKind kind = IterKind::Spatial;

    const std::string &name() const { return var.node()->name; }
};

/** How input operands combine into the reduction update. */
enum class CombineKind
{
    MultiplyAdd, ///< out += in1 * in2 (two inputs)
    SumReduce,   ///< out += in1      (one input)
};

/** A read access of one input tensor. */
struct TensorAccess
{
    TensorDecl decl;
    std::vector<Expr> indices;
};

/**
 * A single-statement tensor computation over a perfect loop nest.
 *
 * Invariants (checked on construction):
 *  - output indices reference spatial iterators only;
 *  - every iterator is referenced by at least one access;
 *  - all access indices are affine in the iterators;
 *  - operand count matches the combine kind.
 */
class TensorComputation
{
  public:
    TensorComputation(std::string name, std::vector<IterVar> iters,
                      TensorDecl output,
                      std::vector<Expr> output_indices,
                      std::vector<TensorAccess> inputs,
                      CombineKind combine = CombineKind::MultiplyAdd);

    const std::string &name() const { return _name; }
    const std::vector<IterVar> &iters() const { return _iters; }
    const TensorDecl &output() const { return _output; }
    const std::vector<Expr> &outputIndices() const
    {
        return _outputIndices;
    }
    const std::vector<TensorAccess> &inputs() const { return _inputs; }
    CombineKind combine() const { return _combine; }

    /** Number of iterators. */
    std::size_t numIters() const { return _iters.size(); }

    /** Position of an iterator variable; panics if absent. */
    std::size_t iterIndex(const VarNode *var) const;

    /** Extent of an iterator variable. */
    std::int64_t iterExtent(const VarNode *var) const;

    /** Product of all iterator extents (= scalar-update count). */
    std::int64_t totalIterations() const;

    /**
     * Floating-point operation count: 2 ops per multiply-add update,
     * 1 per sum update.
     */
    std::int64_t flopCount() const;

    /** Iterators of a given kind, in loop order. */
    std::vector<const VarNode *> itersOfKind(IterKind kind) const;

    /** Human-readable rendering of the loop nest and statement. */
    std::string toString() const;

    /**
     * Mark an iterator as a tensorize barrier: it may never be mapped
     * to an intrinsic iteration and always stays an outer loop.
     *
     * Used for iterators whose access arithmetic only becomes affine
     * after a data-layout transformation that intrinsics cannot see
     * through — e.g. the output spatial dims of a transposed
     * convolution, where adjacent output pixels draw from different
     * sub-pixel weight phases.
     */
    void addTensorizeBarrier(const VarNode *var);

    /** True iff the iterator is barred from intrinsic mapping. */
    bool isTensorizeBarrier(const VarNode *var) const;

    /**
     * Copy of this computation with one input access index replaced,
     * bypassing the affine-index validation (the expression must
     * still evaluate under the declared iterators, and every other
     * invariant is re-checked).
     *
     * Test/fuzz hook only: the constructor rejects non-affine
     * accesses, so this is the one way to build a computation that
     * forces the stride-walk engine's interpreter fallback.
     */
    TensorComputation withMutatedInputIndex(std::size_t input,
                                            std::size_t dim,
                                            Expr index) const;

    /**
     * Copy of this computation with the operand dtypes replaced:
     * inputDtypes[i] retypes input i (size must match), outputDtype
     * retypes the output. Shapes, accesses, and tensorize barriers
     * are preserved — this is how the quantized op variants are built
     * (see ops/operators.hh).
     */
    TensorComputation
    withOperandDtypes(const std::vector<DataType> &inputDtypes,
                      DataType outputDtype) const;

  private:
    void validate() const;

    std::vector<const VarNode *> _tensorizeBarriers;

    std::string _name;
    std::vector<IterVar> _iters;
    TensorDecl _output;
    std::vector<Expr> _outputIndices;
    std::vector<TensorAccess> _inputs;
    CombineKind _combine;
};

} // namespace amos

#endif // AMOS_TENSOR_COMPUTATION_HH
