/**
 * @file
 * Reference interpreter: executes a TensorComputation directly as the
 * nested scalar loop it denotes. This is the semantic ground truth
 * that mapped/tiled executions are checked against.
 */

#ifndef AMOS_TENSOR_REFERENCE_HH
#define AMOS_TENSOR_REFERENCE_HH

#include <vector>

#include "tensor/access_walk.hh"
#include "tensor/computation.hh"
#include "tensor/tensor.hh"

namespace amos {

/**
 * Execute the computation over the given input buffers, accumulating
 * into (pre-zeroed or pre-initialised) output.
 *
 * By default this lowers every access to precomputed affine stride
 * form and runs the stride-walk engine (see tensor/access_walk.hh) —
 * bit-identical to the scalar interpreter, which remains as the
 * transparent fallback for non-affine accesses or mismatched buffer
 * shapes (logged via the exec.fallback metric). With
 * ExecEngine::Jit the nest is lowered to native code through the
 * registered JIT hook (see tensor/jit_hook.hh), falling back to the
 * stride walk — and then the interpreter — when the tier declines
 * (logged via exec.jit_fallback).
 *
 * @param comp The computation to interpret.
 * @param inputs One buffer per computation input, in order.
 * @param output Buffer matching the computation's output declaration.
 * @param opts Thread count for the outer sweep and engine selection.
 * @return The tier that actually ran (and any JIT fallback reason).
 */
ExecReport referenceExecute(const TensorComputation &comp,
                            const std::vector<const Buffer *> &inputs,
                            Buffer &output, const ExecOptions &opts);

ExecReport referenceExecute(const TensorComputation &comp,
                            const std::vector<const Buffer *> &inputs,
                            Buffer &output);

/**
 * Allocate pattern-filled inputs and a zeroed output for a
 * computation, run the reference interpreter, and return the output.
 * Convenience for tests.
 */
Buffer referenceRun(const TensorComputation &comp,
                    std::uint64_t seed = 7);

/** Allocate and pattern-fill input buffers for a computation. */
std::vector<Buffer> makePatternInputs(const TensorComputation &comp,
                                      std::uint64_t seed = 7);

} // namespace amos

#endif // AMOS_TENSOR_REFERENCE_HH
