#include "reference.hh"

#include "quant/semantics.hh"
#include "quant/typed_exec.hh"
#include "support/logging.hh"
#include "support/metrics.hh"
#include "support/trace.hh"
#include "tensor/jit_hook.hh"

namespace amos {

namespace {

/** Evaluate a multi-index access and read/accumulate a buffer. */
std::int64_t
flatIndex(const Buffer &buf, const std::vector<Expr> &indices,
          const VarBinding &binding,
          std::vector<std::int64_t> &scratch)
{
    scratch.resize(indices.size());
    for (std::size_t d = 0; d < indices.size(); ++d)
        scratch[d] = evalExpr(indices[d], binding);
    return buf.flatten(scratch);
}

/**
 * The compiled plan's strides come from the declared shapes, so the
 * runtime buffers must match them exactly — and the whole iteration
 * box must stay inside every buffer (checked once here instead of
 * per element in the inner loop).
 */
bool
walkFitsBuffers(const AccessWalkPlan &plan,
                const TensorComputation &comp,
                const std::vector<const Buffer *> &inputs,
                const Buffer &output, std::string *why)
{
    for (std::size_t i = 0; i < inputs.size(); ++i) {
        if (inputs[i]->decl().shape() !=
            comp.inputs()[i].decl.shape()) {
            *why = "input " + std::to_string(i) +
                   " shape differs from the declared shape";
            return false;
        }
        if (inputs[i]->storage() !=
            dtypeStorageLane(comp.inputs()[i].decl.dtype())) {
            *why = "input " + std::to_string(i) +
                   " storage lane differs from the declared dtype";
            return false;
        }
    }
    if (output.decl().shape() != comp.output().shape()) {
        *why = "output shape differs from the declared shape";
        return false;
    }
    if (output.storage() !=
        dtypeStorageLane(comp.output().dtype())) {
        *why = "output storage lane differs from the declared dtype";
        return false;
    }
    for (std::size_t m = 0; m < plan.operands.size(); ++m) {
        std::int64_t size =
            m < inputs.size()
                ? static_cast<std::int64_t>(inputs[m]->size())
                : static_cast<std::int64_t>(output.size());
        if (plan.operands[m].minAddr < 0 ||
            plan.operands[m].maxAddr >= size) {
            *why = "operand " + std::to_string(m) +
                   " address box [" +
                   std::to_string(plan.operands[m].minAddr) + ", " +
                   std::to_string(plan.operands[m].maxAddr) +
                   "] exceeds buffer size " + std::to_string(size);
            return false;
        }
    }
    return true;
}

} // namespace

ExecReport
referenceExecute(const TensorComputation &comp,
                 const std::vector<const Buffer *> &inputs,
                 Buffer &output)
{
    return referenceExecute(comp, inputs, output, ExecOptions{});
}

ExecReport
referenceExecute(const TensorComputation &comp,
                 const std::vector<const Buffer *> &inputs,
                 Buffer &output, const ExecOptions &opts)
{
    require(inputs.size() == comp.inputs().size(),
            "referenceExecute: expected ", comp.inputs().size(),
            " inputs, got ", inputs.size());
    for (std::size_t i = 0; i < inputs.size(); ++i) {
        require(inputs[i]->decl().numElements() ==
                comp.inputs()[i].decl.numElements(),
                "referenceExecute: input ", i, " size mismatch");
    }

    const auto sem = quant::classifyComputation(comp);
    require(sem.supported, "referenceExecute(", comp.name(), "): ",
            sem.reason);

    TraceSpan span("exec.reference", "exec");
    auto &metrics = MetricsRegistry::global();
    ExecReport report;
    const ExecEngine engine = opts.resolvedEngine();

    if (engine != ExecEngine::Interpreter) {
        std::string why;
        auto plan = compileReferenceWalk(comp, &why);
        bool fits = plan &&
                    walkFitsBuffers(*plan, comp, inputs, output, &why);

        if (engine == ExecEngine::Jit) {
            const ReferenceJitHook *hook = referenceJitHook();
            std::string jitWhy;
            if (!fits)
                jitWhy = why;
            else if (!hook || !hook->run)
                jitWhy = "jit tier not linked";
            else if (hook->run(comp, *plan, inputs, output, &jitWhy)) {
                metrics.counter("exec.jit_runs").add();
                span.arg("engine", "jit");
                report.engine = "jit";
                return report;
            }
            metrics.counter("exec.jit_fallback").add();
            span.arg("jit_fallback", jitWhy);
            report.jitFallback = jitWhy;
            AMOS_LOG(Debug)
                << "exec.reference jit tier falls back for "
                << comp.name() << ": " << jitWhy;
        }

        if (fits) {
            // The walk is an address generator; the loaders and
            // accumulator carry the discipline (float MAC, exact
            // int32 dot, bf16-widened MAC) so one body per combine
            // kind covers every dtype path.
            WalkRunStats stats;
            switch (comp.combine()) {
              case CombineKind::MultiplyAdd:
                quant::dispatchMulAdd(
                    sem, *inputs[0], *inputs[1], output,
                    [&](auto l0, auto l1, auto acc) {
                        stats = runAccessWalkParallel(
                            *plan, 2, plan->extents.size(),
                            opts.numThreads,
                            [&](const std::int64_t *a) {
                                acc.add(a[2], l0.load(a[0]) *
                                                  l1.load(a[1]));
                            });
                    });
                break;
              case CombineKind::SumReduce:
                quant::dispatchSum(
                    sem, *inputs[0], output,
                    [&](auto l0, auto acc) {
                        stats = runAccessWalkParallel(
                            *plan, 1, plan->extents.size(),
                            opts.numThreads,
                            [&](const std::int64_t *a) {
                                acc.add(a[1], l0.load(a[0]));
                            });
                    });
                break;
            }
            noteWalkRun(span, stats, opts.numThreads);
            report.engine = "walk";
            report.threadsUsed = stats.threadsUsed;
            return report;
        }
        metrics.counter("exec.fallback").add();
        span.arg("fallback", why);
        AMOS_LOG(Debug)
            << "exec.reference falls back to the interpreter for "
            << comp.name() << ": " << why;
    }

    // Interpreter: odometer over the software domain, rebinding only
    // the coordinates the odometer actually moved.
    metrics.counter("exec.interpreter_runs").add();
    span.arg("engine", "interpreter");
    const auto &iters = comp.iters();
    std::vector<std::int64_t> extents;
    for (const auto &iv : iters)
        extents.push_back(iv.extent);

    // IntDot accumulates exactly through the integer lanes; the
    // float disciplines go through the converting view (an exact
    // widening for bf16 inputs, since the output is f32).
    const bool intDot = sem.kind == quant::KernelSemantics::IntDot;
    VarBinding binding;
    std::vector<std::int64_t> scratch;
    forEachIndexDelta(extents, [&](const std::vector<std::int64_t>
                                       &idx,
                                   std::size_t dirty) {
        for (std::size_t i = dirty; i < iters.size(); ++i)
            binding[iters[i].var.node()] = idx[i];

        std::int64_t out_flat = flatIndex(
            output, comp.outputIndices(), binding, scratch);
        std::int64_t in0_flat = flatIndex(
            *inputs[0], comp.inputs()[0].indices, binding, scratch);
        std::int64_t in1_flat = -1;
        if (comp.combine() == CombineKind::MultiplyAdd)
            in1_flat = flatIndex(*inputs[1], comp.inputs()[1].indices,
                                 binding, scratch);

        if (intDot) {
            std::int64_t update = inputs[0]->intAt(in0_flat);
            if (comp.combine() == CombineKind::MultiplyAdd)
                update *= inputs[1]->intAt(in1_flat);
            output.intAccumulate(out_flat, update);
        } else {
            float update = inputs[0]->at(in0_flat);
            if (comp.combine() == CombineKind::MultiplyAdd)
                update *= inputs[1]->at(in1_flat);
            output.accumulate(out_flat, update);
        }
    });
    return report;
}

std::vector<Buffer>
makePatternInputs(const TensorComputation &comp, std::uint64_t seed)
{
    std::vector<Buffer> bufs;
    bufs.reserve(comp.inputs().size());
    for (std::size_t i = 0; i < comp.inputs().size(); ++i) {
        bufs.emplace_back(comp.inputs()[i].decl);
        bufs.back().fillPattern(seed + i * 1315423911ULL);
    }
    return bufs;
}

Buffer
referenceRun(const TensorComputation &comp, std::uint64_t seed)
{
    auto inputs = makePatternInputs(comp, seed);
    Buffer out(comp.output());
    std::vector<const Buffer *> ptrs;
    for (const auto &b : inputs)
        ptrs.push_back(&b);
    referenceExecute(comp, ptrs, out);
    return out;
}

} // namespace amos
