#include "reference.hh"

#include "support/logging.hh"

namespace amos {

namespace {

/** Evaluate a multi-index access and read/accumulate a buffer. */
std::int64_t
flatIndex(const Buffer &buf, const std::vector<Expr> &indices,
          const VarBinding &binding)
{
    std::vector<std::int64_t> idx(indices.size());
    for (std::size_t d = 0; d < indices.size(); ++d)
        idx[d] = evalExpr(indices[d], binding);
    return buf.flatten(idx);
}

} // namespace

void
referenceExecute(const TensorComputation &comp,
                 const std::vector<const Buffer *> &inputs,
                 Buffer &output)
{
    require(inputs.size() == comp.inputs().size(),
            "referenceExecute: expected ", comp.inputs().size(),
            " inputs, got ", inputs.size());
    for (std::size_t i = 0; i < inputs.size(); ++i) {
        require(inputs[i]->decl().numElements() ==
                comp.inputs()[i].decl.numElements(),
                "referenceExecute: input ", i, " size mismatch");
    }

    const auto &iters = comp.iters();
    std::vector<std::int64_t> idx(iters.size(), 0);
    VarBinding binding;
    for (const auto &iv : iters)
        binding[iv.var.node()] = 0;

    // Odometer-style traversal of the full iteration domain.
    bool done = iters.empty();
    while (!done) {
        for (std::size_t i = 0; i < iters.size(); ++i)
            binding[iters[i].var.node()] = idx[i];

        std::int64_t out_flat =
            flatIndex(output, comp.outputIndices(), binding);
        float update = 0.0f;
        switch (comp.combine()) {
          case CombineKind::MultiplyAdd: {
            float a = inputs[0]->at(flatIndex(
                *inputs[0], comp.inputs()[0].indices, binding));
            float b = inputs[1]->at(flatIndex(
                *inputs[1], comp.inputs()[1].indices, binding));
            update = a * b;
            break;
          }
          case CombineKind::SumReduce: {
            update = inputs[0]->at(flatIndex(
                *inputs[0], comp.inputs()[0].indices, binding));
            break;
          }
        }
        output.accumulate(out_flat, update);

        // Advance the odometer (last iterator is innermost).
        std::size_t d = iters.size();
        while (d > 0) {
            --d;
            if (++idx[d] < iters[d].extent)
                break;
            idx[d] = 0;
            if (d == 0)
                done = true;
        }
    }
}

std::vector<Buffer>
makePatternInputs(const TensorComputation &comp, std::uint64_t seed)
{
    std::vector<Buffer> bufs;
    bufs.reserve(comp.inputs().size());
    for (std::size_t i = 0; i < comp.inputs().size(); ++i) {
        bufs.emplace_back(comp.inputs()[i].decl);
        bufs.back().fillPattern(seed + i * 1315423911ULL);
    }
    return bufs;
}

Buffer
referenceRun(const TensorComputation &comp, std::uint64_t seed)
{
    auto inputs = makePatternInputs(comp, seed);
    Buffer out(comp.output());
    std::vector<const Buffer *> ptrs;
    for (const auto &b : inputs)
        ptrs.push_back(&b);
    referenceExecute(comp, ptrs, out);
    return out;
}

} // namespace amos
