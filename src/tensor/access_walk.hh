/**
 * @file
 * Affine access-plan compiler and stride-walk runner.
 *
 * The functional simulators historically evaluated every tensor
 * access per scalar element with a recursive evalExpr() tree walk
 * over a hash-map variable binding — the dominant cost of the
 * differential correctness suites. Since every access index of a
 * TensorComputation is affine in the loop iterators, the flat
 * address of each operand is
 *
 *     addr = base + sum_l stride_l * idx_l
 *
 * over the loop-nest counters. An AccessWalkPlan precomputes those
 * per-level strides once; runAccessWalk() then advances every
 * operand address incrementally — add one stride on an increment,
 * subtract a precomputed rollback on a carry — with zero hash
 * lookups, zero evalExpr calls, and zero allocations in the inner
 * loop. Execution order is identical to the interpreter's odometer
 * (last level innermost), so floating-point accumulation is
 * bit-identical.
 *
 * Parallel sweeps: pickSplitLevel() finds a loop level whose values
 * provably touch disjoint addresses of the accumulated operand (the
 * per-step address jump dominates the combined span of every other
 * level). Restricting that level to per-thread sub-ranges keeps each
 * output element's updates on one thread, in serial order — so the
 * result is bit-identical for every thread count, and data-race-free
 * by construction.
 */

#ifndef AMOS_TENSOR_ACCESS_WALK_HH
#define AMOS_TENSOR_ACCESS_WALK_HH

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "support/logging.hh"
#include "support/thread_pool.hh"
#include "tensor/computation.hh"

namespace amos {

/**
 * Execution tiers of the functional simulators, fastest first when
 * available. Every tier produces bit-identical results; lower tiers
 * are transparent fallbacks for what an upper tier cannot run.
 */
enum class ExecEngine
{
    /// Stride-walk engine with interpreter fallback (the default).
    Auto,
    /// Scalar interpreter only (baseline / differential testing).
    Interpreter,
    /// Stride-walk engine, interpreter fallback on non-affine plans.
    Walk,
    /// Native-codegen JIT tier: lower the plan to C, compile with the
    /// system compiler, dlopen, run. Falls back to the stride walk
    /// (then the interpreter) when no compiler or kernel is
    /// available; requires the amos_jit library to be linked.
    Jit,
};

/** Stable lowercase name ("auto", "interpreter", "walk", "jit"). */
const char *execEngineName(ExecEngine engine);

/** Parse an engine name; nullopt on unknown names. */
std::optional<ExecEngine> parseExecEngine(const std::string &name);

/** Knobs shared by every functional executor. */
struct ExecOptions
{
    /// Worker count for the outer sweep: 1 = serial, 0 = one per
    /// hardware thread. Results are bit-identical for every value.
    /// The JIT tier always runs its kernel serially.
    int numThreads = 1;
    /// Skip the compiled engine (baseline / differential testing).
    /// Kept for source compatibility; equivalent to
    /// engine = ExecEngine::Interpreter.
    bool forceInterpreter = false;
    /// Requested execution tier; lower tiers are fallbacks.
    ExecEngine engine = ExecEngine::Auto;

    /** The tier actually requested once legacy flags are folded in. */
    ExecEngine resolvedEngine() const
    {
        return forceInterpreter ? ExecEngine::Interpreter : engine;
    }
};

/**
 * How an execution actually ran: the tier that produced the result
 * and, when the JIT tier was requested but could not run, why it
 * fell back. Returned by every executor entry point.
 */
struct ExecReport
{
    /// "jit", "walk", or "interpreter".
    std::string engine = "interpreter";
    /// Why the JIT tier fell back (empty unless it was requested and
    /// declined); also surfaced on the trace span and the
    /// exec.jit_fallback metric.
    std::string jitFallback;
    int threadsUsed = 1;
};

/// Executors handle at most inputs + output operands; the packing
/// stages pair each input with its packed destination stream.
constexpr std::size_t kMaxWalkOperands = 6;
/// Loop nests are software iterators or outer axes + intrinsic
/// iterations — far below this cap.
constexpr std::size_t kMaxWalkLevels = 32;

/** One operand's compiled address stream over the loop nest. */
struct WalkOperand
{
    std::int64_t base = 0;                ///< address at all-zero idx
    std::vector<std::int64_t> stride;     ///< per level
    std::vector<std::int64_t> rollback;   ///< stride_l * (extent_l-1)
    std::int64_t minAddr = 0;             ///< over the full level box
    std::int64_t maxAddr = 0;
};

/** A compiled loop nest: level extents + per-operand strides. */
struct AccessWalkPlan
{
    std::vector<std::int64_t> extents;    ///< last level is innermost
    std::vector<WalkOperand> operands;

    /** Fill rollbacks and min/max addresses from base/stride. */
    void finalize();

    /** Total number of inner-loop iterations. */
    std::int64_t totalSteps() const;
};

/**
 * Compile the reference interpreter's loop nest (one level per
 * software iterator, operands = inputs then output) into a stride
 * walk. Returns nullopt — and the reason, if requested — when any
 * access is non-affine.
 */
std::optional<AccessWalkPlan>
compileReferenceWalk(const TensorComputation &comp,
                     std::string *reason = nullptr);

/**
 * The first level (below levelLimit) whose per-step address jump on
 * `operand` dominates the combined span of all other levels — so
 * distinct values of that level touch provably disjoint addresses.
 * Returns -1 when no level qualifies (the sweep must stay serial).
 */
int pickSplitLevel(const AccessWalkPlan &plan, std::size_t operand,
                   std::size_t levelLimit);

/**
 * Serial stride walk with one level optionally restricted to
 * [lo, hi). Body is called once per index tuple, in interpreter
 * (odometer) order, with the operand address array.
 */
template <typename Body>
inline void
runAccessWalkRange(const AccessWalkPlan &plan, int restrictLevel,
                   std::int64_t lo, std::int64_t hi, Body &&body)
{
    const std::size_t nlev = plan.extents.size();
    const std::size_t nops = plan.operands.size();
    require(nlev <= kMaxWalkLevels && nops <= kMaxWalkOperands,
            "runAccessWalkRange: plan too large (", nlev, " levels, ",
            nops, " operands)");

    std::int64_t addr[kMaxWalkOperands] = {0};
    std::int64_t ext[kMaxWalkLevels];
    std::int64_t idx[kMaxWalkLevels];
    std::int64_t str[kMaxWalkLevels * kMaxWalkOperands];
    std::int64_t rb[kMaxWalkLevels * kMaxWalkOperands];

    for (std::size_t l = 0; l < nlev; ++l) {
        ext[l] = static_cast<int>(l) == restrictLevel
                     ? hi - lo
                     : plan.extents[l];
        if (ext[l] <= 0)
            return;
        idx[l] = 0;
        for (std::size_t m = 0; m < nops; ++m) {
            str[l * nops + m] = plan.operands[m].stride[l];
            rb[l * nops + m] = str[l * nops + m] * (ext[l] - 1);
        }
    }
    for (std::size_t m = 0; m < nops; ++m) {
        addr[m] = plan.operands[m].base;
        if (restrictLevel >= 0)
            addr[m] += lo * plan.operands[m].stride[restrictLevel];
    }
    if (nlev == 0) {
        body(addr);
        return;
    }
    while (true) {
        body(addr);
        std::size_t d = nlev;
        while (true) {
            --d;
            if (++idx[d] < ext[d]) {
                const std::int64_t *s = str + d * nops;
                for (std::size_t m = 0; m < nops; ++m)
                    addr[m] += s[m];
                break;
            }
            idx[d] = 0;
            const std::int64_t *r = rb + d * nops;
            for (std::size_t m = 0; m < nops; ++m)
                addr[m] -= r[m];
            if (d == 0)
                return;
        }
    }
}

/** Full serial stride walk. */
template <typename Body>
inline void
runAccessWalk(const AccessWalkPlan &plan, Body &&body)
{
    runAccessWalkRange(plan, -1, 0, 0, body);
}

/**
 * Interpreter-side odometer: calls fn(idx, dirtyFrom) for every
 * index tuple, where levels dirtyFrom..end are exactly the ones that
 * changed since the previous call (dirtyFrom == 0 on the first).
 * Lets interpreter fallbacks rebind only the coordinates that moved
 * instead of rebuilding the whole variable binding per iteration.
 */
template <typename Fn>
inline void
forEachIndexDelta(const std::vector<std::int64_t> &extents, Fn &&fn)
{
    for (auto e : extents)
        if (e <= 0)
            return;
    std::vector<std::int64_t> idx(extents.size(), 0);
    std::size_t dirty = 0;
    if (extents.empty()) {
        fn(idx, dirty);
        return;
    }
    while (true) {
        fn(idx, dirty);
        std::size_t d = extents.size();
        while (true) {
            --d;
            if (++idx[d] < extents[d]) {
                dirty = d;
                break;
            }
            idx[d] = 0;
            if (d == 0)
                return;
        }
    }
}

/** How a walk actually ran (for metrics / trace annotations). */
struct WalkRunStats
{
    int threadsUsed = 1;
    int splitLevel = -1; ///< -1 when the sweep ran serially
};

class TraceSpan;

/**
 * Record a compiled run on the executor's trace span and the exec.*
 * metrics: engine/thread annotations, exec.compiled_runs, and either
 * exec.parallel_runs or — when more than one thread was requested but
 * no provably disjoint split level exists — exec.parallel_unsplittable.
 */
void noteWalkRun(TraceSpan &span, const WalkRunStats &stats,
                 int requestedThreads);

/**
 * Parallel stride walk: splits `disjointOperand`'s provably disjoint
 * level (searched below splitLimit) into contiguous chunks, one walk
 * per chunk. Falls back to a serial walk when no level qualifies or
 * one thread is requested. Bit-identical for every thread count.
 */
template <typename Body>
inline WalkRunStats
runAccessWalkParallel(const AccessWalkPlan &plan,
                      std::size_t disjointOperand,
                      std::size_t splitLimit, int numThreads,
                      Body &&body)
{
    WalkRunStats stats;
    std::size_t threads = ThreadPool::resolveThreads(numThreads);
    int level = -1;
    if (threads > 1)
        level = pickSplitLevel(plan, disjointOperand, splitLimit);
    if (threads <= 1 || level < 0) {
        runAccessWalk(plan, body);
        return stats;
    }
    std::int64_t extent = plan.extents[static_cast<std::size_t>(level)];
    std::size_t chunks =
        std::min<std::size_t>(threads,
                              static_cast<std::size_t>(extent));
    stats.threadsUsed = static_cast<int>(chunks);
    stats.splitLevel = level;
    parallelFor(
        chunks,
        [&](std::size_t c) {
            std::int64_t lo = extent * static_cast<std::int64_t>(c) /
                              static_cast<std::int64_t>(chunks);
            std::int64_t hi =
                extent * static_cast<std::int64_t>(c + 1) /
                static_cast<std::int64_t>(chunks);
            runAccessWalkRange(plan, level, lo, hi, body);
        },
        static_cast<int>(chunks));
    return stats;
}

} // namespace amos

#endif // AMOS_TENSOR_ACCESS_WALK_HH
