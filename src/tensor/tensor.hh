/**
 * @file
 * Tensor declarations and numeric buffers.
 *
 * A TensorDecl is a typed, shaped, named symbol (the compile-time
 * view); a Buffer is the runtime storage used by the functional
 * executor and reference interpreter.
 */

#ifndef AMOS_TENSOR_TENSOR_HH
#define AMOS_TENSOR_TENSOR_HH

#include <cstdint>
#include <string>
#include <vector>

#include "support/logging.hh"
#include "tensor/dtype.hh"

namespace amos {

/** Compile-time tensor symbol: name, shape, element type. */
class TensorDecl
{
  public:
    TensorDecl() = default;

    TensorDecl(std::string name, std::vector<std::int64_t> shape,
               DataType dtype = DataType::F16)
        : _name(std::move(name)), _shape(std::move(shape)),
          _dtype(dtype)
    {
        for (auto s : _shape)
            expect(s > 0, "tensor ", _name,
                   " has non-positive dimension ", s);
    }

    const std::string &name() const { return _name; }
    const std::vector<std::int64_t> &shape() const { return _shape; }
    DataType dtype() const { return _dtype; }

    std::size_t ndim() const { return _shape.size(); }

    /** Total element count. */
    std::int64_t
    numElements() const
    {
        std::int64_t n = 1;
        for (auto s : _shape)
            n *= s;
        return n;
    }

    /** Total storage in bytes. */
    std::int64_t
    numBytes() const
    {
        return numElements() * dtypeBytes(_dtype);
    }

    /**
     * Row-major strides: stride of dim d is the product of all
     * extents after d.
     */
    std::vector<std::int64_t>
    strides() const
    {
        std::vector<std::int64_t> out(_shape.size(), 1);
        for (std::size_t d = _shape.size(); d-- > 1;)
            out[d - 1] = out[d] * _shape[d];
        return out;
    }

    /** "name[s0, s1, ...]:dtype" for diagnostics. */
    std::string toString() const;

  private:
    std::string _name;
    std::vector<std::int64_t> _shape;
    DataType _dtype = DataType::F16;
};

/**
 * Runtime storage for a tensor: flat row-major float data.
 *
 * Stored as float regardless of the declared element type; the
 * functional path checks mapping semantics, not rounding.
 */
class Buffer
{
  public:
    explicit Buffer(TensorDecl decl)
        : _decl(std::move(decl)),
          _data(static_cast<std::size_t>(_decl.numElements()), 0.0f)
    {}

    const TensorDecl &decl() const { return _decl; }

    float *data() { return _data.data(); }
    const float *data() const { return _data.data(); }

    std::size_t size() const { return _data.size(); }

    float
    at(std::int64_t flat_index) const
    {
        require(flat_index >= 0 &&
                flat_index < static_cast<std::int64_t>(_data.size()),
                "Buffer ", _decl.name(), " read out of range: ",
                flat_index, " of ", _data.size());
        return _data[static_cast<std::size_t>(flat_index)];
    }

    void
    set(std::int64_t flat_index, float value)
    {
        require(flat_index >= 0 &&
                flat_index < static_cast<std::int64_t>(_data.size()),
                "Buffer ", _decl.name(), " write out of range: ",
                flat_index, " of ", _data.size());
        _data[static_cast<std::size_t>(flat_index)] = value;
    }

    void
    accumulate(std::int64_t flat_index, float value)
    {
        set(flat_index, at(flat_index) + value);
    }

    /** Flatten a multi-dimensional index (bounds-checked). */
    std::int64_t flatten(const std::vector<std::int64_t> &idx) const;

    /** Reset all elements to a value. */
    void fill(float value);

    /** Fill with a deterministic pseudo-random pattern. */
    void fillPattern(std::uint64_t seed);

    /** Largest absolute element-wise difference to another buffer. */
    float maxAbsDiff(const Buffer &other) const;

  private:
    TensorDecl _decl;
    std::vector<float> _data;
};

} // namespace amos

#endif // AMOS_TENSOR_TENSOR_HH
