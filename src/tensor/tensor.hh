/**
 * @file
 * Tensor declarations and typed numeric buffers.
 *
 * A TensorDecl is a typed, shaped, named symbol (the compile-time
 * view); a Buffer is the runtime storage used by the functional
 * executors. Storage follows the declared dtype's StorageLane
 * (tensor/dtype.hh): f16/f32 share the host-float lane, bf16 is kept
 * as raw 16-bit patterns, i8/u8/i32 are stored exactly. Exactly one
 * lane is allocated per buffer.
 *
 * Two access disciplines coexist:
 *  - converting `at`/`set` (float view of any lane, with
 *    round-to-nearest-even for bf16 and round+saturate for integers)
 *    for harness code and float-domain engines, and
 *  - exact `intAt`/`intSet`/`intAccumulate` for the integer lanes,
 *    where the quantized engines must never round.
 */

#ifndef AMOS_TENSOR_TENSOR_HH
#define AMOS_TENSOR_TENSOR_HH

#include <cmath>
#include <cstdint>
#include <string>
#include <vector>

#include "quant/bf16.hh"
#include "support/logging.hh"
#include "tensor/dtype.hh"

namespace amos {

/** Compile-time tensor symbol: name, shape, element type. */
class TensorDecl
{
  public:
    TensorDecl() = default;

    TensorDecl(std::string name, std::vector<std::int64_t> shape,
               DataType dtype = DataType::F16)
        : _name(std::move(name)), _shape(std::move(shape)),
          _dtype(dtype)
    {
        for (auto s : _shape)
            expect(s > 0, "tensor ", _name,
                   " has non-positive dimension ", s);
    }

    const std::string &name() const { return _name; }
    const std::vector<std::int64_t> &shape() const { return _shape; }
    DataType dtype() const { return _dtype; }

    std::size_t ndim() const { return _shape.size(); }

    /** Copy of this declaration with a different element type. */
    TensorDecl
    withDtype(DataType dtype) const
    {
        TensorDecl out = *this;
        out._dtype = dtype;
        return out;
    }

    /** Total element count. */
    std::int64_t
    numElements() const
    {
        std::int64_t n = 1;
        for (auto s : _shape)
            n *= s;
        return n;
    }

    /** Total storage in bytes. */
    std::int64_t
    numBytes() const
    {
        return numElements() * dtypeBytes(_dtype);
    }

    /**
     * Row-major strides: stride of dim d is the product of all
     * extents after d.
     */
    std::vector<std::int64_t>
    strides() const
    {
        std::vector<std::int64_t> out(_shape.size(), 1);
        for (std::size_t d = _shape.size(); d-- > 1;)
            out[d - 1] = out[d] * _shape[d];
        return out;
    }

    /** "name[s0, s1, ...]:dtype" for diagnostics. */
    std::string toString() const;

  private:
    std::string _name;
    std::vector<std::int64_t> _shape;
    DataType _dtype = DataType::F16;
};

/**
 * Runtime storage for a tensor: flat row-major data in the lane
 * selected by the declared dtype.
 */
class Buffer
{
  public:
    explicit Buffer(TensorDecl decl)
        : _decl(std::move(decl)),
          _storage(dtypeStorageLane(_decl.dtype())),
          _elems(static_cast<std::size_t>(_decl.numElements()))
    {
        switch (_storage) {
          case StorageLane::F32: _f32.assign(_elems, 0.0f); break;
          case StorageLane::BF16: _bf16.assign(_elems, 0); break;
          case StorageLane::I8: _i8.assign(_elems, 0); break;
          case StorageLane::U8: _u8.assign(_elems, 0); break;
          case StorageLane::I32: _i32.assign(_elems, 0); break;
        }
    }

    const TensorDecl &decl() const { return _decl; }
    StorageLane storage() const { return _storage; }
    std::size_t size() const { return _elems; }

    /** Bytes actually held on the host (lane width x elements). */
    std::int64_t
    storageBytes() const
    {
        return static_cast<std::int64_t>(_elems) *
               storageLaneBytes(_storage);
    }

    float *
    data()
    {
        requireLane(StorageLane::F32, "data");
        return _f32.data();
    }
    const float *
    data() const
    {
        requireLane(StorageLane::F32, "data");
        return _f32.data();
    }

    std::uint16_t *
    bf16Data()
    {
        requireLane(StorageLane::BF16, "bf16Data");
        return _bf16.data();
    }
    const std::uint16_t *
    bf16Data() const
    {
        requireLane(StorageLane::BF16, "bf16Data");
        return _bf16.data();
    }

    std::int8_t *
    i8Data()
    {
        requireLane(StorageLane::I8, "i8Data");
        return _i8.data();
    }
    const std::int8_t *
    i8Data() const
    {
        requireLane(StorageLane::I8, "i8Data");
        return _i8.data();
    }

    std::uint8_t *
    u8Data()
    {
        requireLane(StorageLane::U8, "u8Data");
        return _u8.data();
    }
    const std::uint8_t *
    u8Data() const
    {
        requireLane(StorageLane::U8, "u8Data");
        return _u8.data();
    }

    std::int32_t *
    i32Data()
    {
        requireLane(StorageLane::I32, "i32Data");
        return _i32.data();
    }
    const std::int32_t *
    i32Data() const
    {
        requireLane(StorageLane::I32, "i32Data");
        return _i32.data();
    }

    /** Untyped pointer to the active lane (for the JIT ABI). */
    void *
    rawData()
    {
        switch (_storage) {
          case StorageLane::F32: return _f32.data();
          case StorageLane::BF16: return _bf16.data();
          case StorageLane::I8: return _i8.data();
          case StorageLane::U8: return _u8.data();
          case StorageLane::I32: return _i32.data();
        }
        std::abort(); // unreachable for in-range enumerators
    }
    const void *
    rawData() const
    {
        return const_cast<Buffer *>(this)->rawData();
    }

    /**
     * Converting read: the element as a float, whatever the lane.
     * Exact for bf16 and the 8-bit lanes; i32 values beyond 2^24 can
     * round (use intAt for exact integer work).
     */
    float
    at(std::int64_t flat_index) const
    {
        checkIndex(flat_index, "read");
        const auto i = static_cast<std::size_t>(flat_index);
        switch (_storage) {
          case StorageLane::F32: return _f32[i];
          case StorageLane::BF16:
            return quant::floatFromBf16(_bf16[i]);
          case StorageLane::I8: return static_cast<float>(_i8[i]);
          case StorageLane::U8: return static_cast<float>(_u8[i]);
          case StorageLane::I32: return static_cast<float>(_i32[i]);
        }
        std::abort(); // unreachable for in-range enumerators
    }

    /**
     * Converting write: round-to-nearest-even into bf16, round
     * half-away-from-zero and saturate into the integer lanes.
     */
    void
    set(std::int64_t flat_index, float value)
    {
        checkIndex(flat_index, "write");
        const auto i = static_cast<std::size_t>(flat_index);
        switch (_storage) {
          case StorageLane::F32: _f32[i] = value; return;
          case StorageLane::BF16:
            _bf16[i] = quant::bf16FromFloat(value);
            return;
          case StorageLane::I8:
            _i8[i] = static_cast<std::int8_t>(
                clampRound(value, -128, 127));
            return;
          case StorageLane::U8:
            _u8[i] =
                static_cast<std::uint8_t>(clampRound(value, 0, 255));
            return;
          case StorageLane::I32:
            _i32[i] = static_cast<std::int32_t>(
                clampRound(value, INT32_MIN, INT32_MAX));
            return;
        }
    }

    /**
     * Float accumulation; host-float lane only. Accumulating into a
     * rounding lane (bf16/int) would hide per-step rounding — the
     * engines must do that explicitly or not at all.
     */
    void
    accumulate(std::int64_t flat_index, float value)
    {
        requireLane(StorageLane::F32, "accumulate");
        checkIndex(flat_index, "accumulate");
        _f32[static_cast<std::size_t>(flat_index)] += value;
    }

    /** Exact integer read; integer lanes only. */
    std::int64_t
    intAt(std::int64_t flat_index) const
    {
        checkIndex(flat_index, "intAt");
        const auto i = static_cast<std::size_t>(flat_index);
        switch (_storage) {
          case StorageLane::I8: return _i8[i];
          case StorageLane::U8: return _u8[i];
          case StorageLane::I32: return _i32[i];
          case StorageLane::F32:
          case StorageLane::BF16:
            break;
        }
        panic("Buffer ", _decl.name(), ": intAt on non-integer lane");
    }

    /** Exact integer write (wrapping cast into the lane's range). */
    void
    intSet(std::int64_t flat_index, std::int64_t value)
    {
        checkIndex(flat_index, "intSet");
        const auto i = static_cast<std::size_t>(flat_index);
        switch (_storage) {
          case StorageLane::I8:
            _i8[i] = static_cast<std::int8_t>(value);
            return;
          case StorageLane::U8:
            _u8[i] = static_cast<std::uint8_t>(value);
            return;
          case StorageLane::I32:
            _i32[i] = static_cast<std::int32_t>(value);
            return;
          case StorageLane::F32:
          case StorageLane::BF16:
            break;
        }
        panic("Buffer ", _decl.name(), ": intSet on non-integer lane");
    }

    /** Exact wrapping int32 accumulation; i32 lane only. */
    void
    intAccumulate(std::int64_t flat_index, std::int64_t value)
    {
        requireLane(StorageLane::I32, "intAccumulate");
        checkIndex(flat_index, "intAccumulate");
        auto &slot = _i32[static_cast<std::size_t>(flat_index)];
        slot = static_cast<std::int32_t>(
            static_cast<std::int64_t>(slot) + value);
    }

    /** Flatten a multi-dimensional index (bounds-checked). */
    std::int64_t flatten(const std::vector<std::int64_t> &idx) const;

    /** Reset all elements to a value (converting, like set()). */
    void fill(float value);

    /** Fill with a deterministic, dtype-aware pseudo-random pattern. */
    void fillPattern(std::uint64_t seed);

    /** Largest absolute element-wise difference (converting view). */
    float maxAbsDiff(const Buffer &other) const;

    /** Same lane, same size, identical storage bits. */
    bool
    bitEqual(const Buffer &other) const
    {
        return _storage == other._storage && _f32 == other._f32 &&
               _bf16 == other._bf16 && _i8 == other._i8 &&
               _u8 == other._u8 && _i32 == other._i32;
    }

  private:
    void
    requireLane(StorageLane lane, const char *what) const
    {
        require(_storage == lane, "Buffer ", _decl.name(), ": ", what,
                " on wrong storage lane (dtype ",
                dtypeName(_decl.dtype()), ")");
    }

    void
    checkIndex(std::int64_t flat_index, const char *what) const
    {
        require(flat_index >= 0 &&
                flat_index < static_cast<std::int64_t>(_elems),
                "Buffer ", _decl.name(), " ", what,
                " out of range: ", flat_index, " of ", _elems);
    }

    static std::int64_t
    clampRound(float value, std::int64_t lo, std::int64_t hi)
    {
        const auto r = static_cast<std::int64_t>(std::llround(
            static_cast<double>(value)));
        return r < lo ? lo : (r > hi ? hi : r);
    }

    TensorDecl _decl;
    StorageLane _storage = StorageLane::F32;
    std::size_t _elems = 0;
    // Exactly one of these is non-empty, matching _storage.
    std::vector<float> _f32;
    std::vector<std::uint16_t> _bf16;
    std::vector<std::int8_t> _i8;
    std::vector<std::uint8_t> _u8;
    std::vector<std::int32_t> _i32;
};

} // namespace amos

#endif // AMOS_TENSOR_TENSOR_HH
