#include "computation.hh"

#include "ir/affine.hh"
#include "support/logging.hh"
#include "support/str_utils.hh"

namespace amos {

TensorComputation::TensorComputation(
    std::string name, std::vector<IterVar> iters, TensorDecl output,
    std::vector<Expr> output_indices, std::vector<TensorAccess> inputs,
    CombineKind combine)
    : _name(std::move(name)), _iters(std::move(iters)),
      _output(std::move(output)),
      _outputIndices(std::move(output_indices)),
      _inputs(std::move(inputs)), _combine(combine)
{
    validate();
}

void
TensorComputation::validate() const
{
    expect(!_iters.empty(), _name, ": computation with no iterators");
    expect(_outputIndices.size() == _output.ndim(), _name,
           ": output index rank ", _outputIndices.size(),
           " vs tensor rank ", _output.ndim());
    switch (_combine) {
      case CombineKind::MultiplyAdd:
        expect(_inputs.size() == 2, _name,
               ": MultiplyAdd needs exactly 2 inputs, got ",
               _inputs.size());
        break;
      case CombineKind::SumReduce:
        expect(_inputs.size() == 1, _name,
               ": SumReduce needs exactly 1 input, got ",
               _inputs.size());
        break;
    }
    for (const auto &in : _inputs)
        expect(in.indices.size() == in.decl.ndim(), _name,
               ": access rank mismatch on input ", in.decl.name());

    // Output indices reference spatial iterators only and are affine.
    for (const auto &idx : _outputIndices) {
        auto form = tryToAffine(idx);
        expect(form.has_value(), _name,
               ": non-affine output index ", exprToString(idx));
        for (const auto &term : form->terms()) {
            bool spatial = false;
            for (const auto &iv : _iters) {
                if (iv.var.node() == term.var) {
                    spatial = iv.kind == IterKind::Spatial;
                    break;
                }
            }
            expect(spatial, _name, ": output index uses iterator ",
                   term.var->name,
                   " that is not a spatial iterator");
        }
    }

    // All input indices are affine in declared iterators.
    for (const auto &in : _inputs) {
        for (const auto &idx : in.indices) {
            auto form = tryToAffine(idx);
            expect(form.has_value(), _name,
                   ": non-affine input index ", exprToString(idx),
                   " on ", in.decl.name());
            for (const auto &term : form->terms()) {
                bool known = false;
                for (const auto &iv : _iters)
                    known |= iv.var.node() == term.var;
                expect(known, _name, ": input index on ",
                       in.decl.name(), " uses undeclared variable ",
                       term.var->name);
            }
        }
    }

    // Every iterator must be used somewhere.
    for (const auto &iv : _iters) {
        bool used = false;
        for (const auto &idx : _outputIndices)
            used |= usesVar(idx, iv.var.node());
        for (const auto &in : _inputs)
            for (const auto &idx : in.indices)
                used |= usesVar(idx, iv.var.node());
        expect(used, _name, ": iterator ", iv.name(),
               " is never used in any access");
        expect(iv.extent > 0, _name, ": iterator ", iv.name(),
               " has non-positive extent ", iv.extent);
    }
}

void
TensorComputation::addTensorizeBarrier(const VarNode *var)
{
    iterIndex(var); // validates the variable belongs to this nest
    _tensorizeBarriers.push_back(var);
}

bool
TensorComputation::isTensorizeBarrier(const VarNode *var) const
{
    for (auto *v : _tensorizeBarriers)
        if (v == var)
            return true;
    return false;
}

TensorComputation
TensorComputation::withMutatedInputIndex(std::size_t input,
                                         std::size_t dim,
                                         Expr index) const
{
    require(input < _inputs.size(),
            _name, ": withMutatedInputIndex input ", input,
            " out of range");
    require(dim < _inputs[input].indices.size(),
            _name, ": withMutatedInputIndex dim ", dim,
            " out of range");
    TensorComputation mutated = *this;
    mutated._name = _name + "_mutated";
    mutated._inputs[input].indices[dim] = std::move(index);
    return mutated;
}

TensorComputation
TensorComputation::withOperandDtypes(
    const std::vector<DataType> &inputDtypes,
    DataType outputDtype) const
{
    require(inputDtypes.size() == _inputs.size(),
            _name, ": withOperandDtypes got ", inputDtypes.size(),
            " input dtypes for ", _inputs.size(), " inputs");
    TensorComputation retyped = *this;
    for (std::size_t i = 0; i < _inputs.size(); ++i)
        retyped._inputs[i].decl =
            _inputs[i].decl.withDtype(inputDtypes[i]);
    retyped._output = _output.withDtype(outputDtype);
    return retyped;
}

std::size_t
TensorComputation::iterIndex(const VarNode *var) const
{
    for (std::size_t i = 0; i < _iters.size(); ++i)
        if (_iters[i].var.node() == var)
            return i;
    panic(_name, ": unknown iterator variable ", var->name);
}

std::int64_t
TensorComputation::iterExtent(const VarNode *var) const
{
    return _iters[iterIndex(var)].extent;
}

std::int64_t
TensorComputation::totalIterations() const
{
    std::int64_t n = 1;
    for (const auto &iv : _iters)
        n *= iv.extent;
    return n;
}

std::int64_t
TensorComputation::flopCount() const
{
    std::int64_t per_update =
        _combine == CombineKind::MultiplyAdd ? 2 : 1;
    return totalIterations() * per_update;
}

std::vector<const VarNode *>
TensorComputation::itersOfKind(IterKind kind) const
{
    std::vector<const VarNode *> out;
    for (const auto &iv : _iters)
        if (iv.kind == kind)
            out.push_back(iv.var.node());
    return out;
}

std::string
TensorComputation::toString() const
{
    std::string out = _name + ":\n";
    for (const auto &iv : _iters) {
        out += "  for " + iv.name() + " in [0, " +
               std::to_string(iv.extent) + ")" +
               (iv.kind == IterKind::Reduction ? " (reduce)" : "") +
               "\n";
    }
    auto render_access = [](const TensorDecl &decl,
                            const std::vector<Expr> &indices) {
        return decl.name() + "[" +
               joinMapped(indices, ", ",
                          [](const Expr &e) {
                              return exprToString(e);
                          }) +
               "]";
    };
    out += "    " + render_access(_output, _outputIndices);
    out += _combine == CombineKind::MultiplyAdd ? " += " : " += ";
    std::vector<std::string> rhs;
    for (const auto &in : _inputs)
        rhs.push_back(render_access(in.decl, in.indices));
    out += join(rhs, _combine == CombineKind::MultiplyAdd ? " * " : "");
    out += "\n";
    return out;
}

} // namespace amos
