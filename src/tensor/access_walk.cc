#include "access_walk.hh"

#include <algorithm>
#include <cmath>

#include "ir/affine.hh"
#include "support/metrics.hh"
#include "support/trace.hh"

namespace amos {

const char *
execEngineName(ExecEngine engine)
{
    switch (engine) {
      case ExecEngine::Auto: return "auto";
      case ExecEngine::Interpreter: return "interpreter";
      case ExecEngine::Walk: return "walk";
      case ExecEngine::Jit: return "jit";
    }
    return "auto";
}

std::optional<ExecEngine>
parseExecEngine(const std::string &name)
{
    if (name == "auto")
        return ExecEngine::Auto;
    if (name == "interpreter")
        return ExecEngine::Interpreter;
    if (name == "walk")
        return ExecEngine::Walk;
    if (name == "jit")
        return ExecEngine::Jit;
    return std::nullopt;
}

void
noteWalkRun(TraceSpan &span, const WalkRunStats &stats,
            int requestedThreads)
{
    auto &metrics = MetricsRegistry::global();
    metrics.counter("exec.compiled_runs").add();
    span.arg("engine", "compiled");
    span.arg("threads", static_cast<std::int64_t>(stats.threadsUsed));
    if (stats.threadsUsed > 1)
        metrics.counter("exec.parallel_runs").add();
    else if (ThreadPool::resolveThreads(requestedThreads) > 1)
        metrics.counter("exec.parallel_unsplittable").add();
}

void
AccessWalkPlan::finalize()
{
    for (auto &op : operands) {
        require(op.stride.size() == extents.size(),
                "AccessWalkPlan: operand has ", op.stride.size(),
                " strides for ", extents.size(), " levels");
        op.rollback.resize(op.stride.size());
        op.minAddr = op.base;
        op.maxAddr = op.base;
        for (std::size_t l = 0; l < extents.size(); ++l) {
            std::int64_t span = op.stride[l] * (extents[l] - 1);
            op.rollback[l] = span;
            if (span < 0)
                op.minAddr += span;
            else
                op.maxAddr += span;
        }
    }
}

std::int64_t
AccessWalkPlan::totalSteps() const
{
    std::int64_t n = 1;
    for (auto e : extents)
        n *= e;
    return n;
}

std::optional<AccessWalkPlan>
compileReferenceWalk(const TensorComputation &comp,
                     std::string *reason)
{
    AccessWalkPlan plan;
    const auto &iters = comp.iters();
    for (const auto &iv : iters)
        plan.extents.push_back(iv.extent);

    auto compileOperand = [&](const TensorDecl &decl,
                              const std::vector<Expr> &indices,
                              const std::string &name) {
        auto analysis = analyzeFlatAccess(indices, decl.strides());
        if (!analysis.ok()) {
            if (reason)
                *reason = name + ": " + analysis.reason;
            return false;
        }
        WalkOperand op;
        op.base = analysis.form->constant();
        for (const auto &iv : iters)
            op.stride.push_back(
                analysis.form->coeffOf(iv.var.node()));
        plan.operands.push_back(std::move(op));
        return true;
    };

    for (const auto &in : comp.inputs())
        if (!compileOperand(in.decl, in.indices, in.decl.name()))
            return std::nullopt;
    if (!compileOperand(comp.output(), comp.outputIndices(),
                        comp.output().name()))
        return std::nullopt;
    plan.finalize();
    return plan;
}

int
pickSplitLevel(const AccessWalkPlan &plan, std::size_t operand,
               std::size_t levelLimit)
{
    require(operand < plan.operands.size(),
            "pickSplitLevel: operand out of range");
    const auto &op = plan.operands[operand];
    std::int64_t total_span = 0;
    for (std::size_t l = 0; l < plan.extents.size(); ++l)
        total_span +=
            std::abs(op.stride[l]) * (plan.extents[l] - 1);
    std::size_t limit =
        std::min(levelLimit, plan.extents.size());
    for (std::size_t l = 0; l < limit; ++l) {
        if (plan.extents[l] < 2 || op.stride[l] == 0)
            continue;
        std::int64_t step = std::abs(op.stride[l]);
        std::int64_t others =
            total_span - step * (plan.extents[l] - 1);
        if (step > others)
            return static_cast<int>(l);
    }
    return -1;
}

} // namespace amos
