#include "tensor.hh"

#include <cmath>

#include "support/str_utils.hh"

namespace amos {

std::string
TensorDecl::toString() const
{
    std::string dims = joinMapped(_shape, ", ",
        [](std::int64_t s) { return std::to_string(s); });
    return _name + "[" + dims + "]:" + dtypeName(_dtype);
}

std::int64_t
Buffer::flatten(const std::vector<std::int64_t> &idx) const
{
    const auto &shape = _decl.shape();
    require(idx.size() == shape.size(), "Buffer ", _decl.name(),
            ": index rank ", idx.size(), " vs tensor rank ",
            shape.size());
    std::int64_t flat = 0;
    for (std::size_t d = 0; d < idx.size(); ++d) {
        require(idx[d] >= 0 && idx[d] < shape[d], "Buffer ",
                _decl.name(), ": index ", idx[d],
                " out of range for dim ", d, " of extent ", shape[d]);
        flat = flat * shape[d] + idx[d];
    }
    return flat;
}

void
Buffer::fill(float value)
{
    for (std::size_t i = 0; i < _elems; ++i)
        set(static_cast<std::int64_t>(i), value);
}

void
Buffer::fillPattern(std::uint64_t seed)
{
    // SplitMix64-derived values: deterministic, cheap, and free of
    // accidental structure. Float lanes get the historical [-1, 1)
    // scaling (bf16 rounds it to nearest-even); the 8-bit lanes take
    // the low byte so the full quantized range is exercised; i32 gets
    // [-1024, 1024) so products and sums stay far from wrap-around.
    std::uint64_t state = seed + 0x9E3779B97F4A7C15ULL;
    for (std::size_t i = 0; i < _elems; ++i) {
        std::uint64_t z = (state += 0x9E3779B97F4A7C15ULL);
        z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
        z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
        z = z ^ (z >> 31);
        switch (_storage) {
          case StorageLane::F32:
          case StorageLane::BF16: {
            const float v = static_cast<float>(
                static_cast<double>(z >> 11) /
                static_cast<double>(1ULL << 53)) * 2.0f - 1.0f;
            if (_storage == StorageLane::F32)
                _f32[i] = v;
            else
                _bf16[i] = quant::bf16FromFloat(v);
            break;
          }
          case StorageLane::I8:
            _i8[i] = static_cast<std::int8_t>(z & 0xff);
            break;
          case StorageLane::U8:
            _u8[i] = static_cast<std::uint8_t>(z & 0xff);
            break;
          case StorageLane::I32:
            _i32[i] =
                static_cast<std::int32_t>(z % 2048) - 1024;
            break;
        }
    }
}

float
Buffer::maxAbsDiff(const Buffer &other) const
{
    require(size() == other.size(),
            "Buffer::maxAbsDiff: size mismatch ", size(), " vs ",
            other.size());
    float worst = 0.0f;
    for (std::size_t i = 0; i < _elems; ++i) {
        const auto idx = static_cast<std::int64_t>(i);
        worst = std::max(
            worst, std::fabs(at(idx) - other.at(idx)));
    }
    return worst;
}

} // namespace amos
