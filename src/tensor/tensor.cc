#include "tensor.hh"

#include <cmath>

#include "support/str_utils.hh"

namespace amos {

std::string
TensorDecl::toString() const
{
    std::string dims = joinMapped(_shape, ", ",
        [](std::int64_t s) { return std::to_string(s); });
    return _name + "[" + dims + "]:" + dtypeName(_dtype);
}

std::int64_t
Buffer::flatten(const std::vector<std::int64_t> &idx) const
{
    const auto &shape = _decl.shape();
    require(idx.size() == shape.size(), "Buffer ", _decl.name(),
            ": index rank ", idx.size(), " vs tensor rank ",
            shape.size());
    std::int64_t flat = 0;
    for (std::size_t d = 0; d < idx.size(); ++d) {
        require(idx[d] >= 0 && idx[d] < shape[d], "Buffer ",
                _decl.name(), ": index ", idx[d],
                " out of range for dim ", d, " of extent ", shape[d]);
        flat = flat * shape[d] + idx[d];
    }
    return flat;
}

void
Buffer::fill(float value)
{
    for (auto &v : _data)
        v = value;
}

void
Buffer::fillPattern(std::uint64_t seed)
{
    // SplitMix64-derived values scaled into [-1, 1): deterministic,
    // cheap, and free of accidental structure.
    std::uint64_t state = seed + 0x9E3779B97F4A7C15ULL;
    for (auto &v : _data) {
        std::uint64_t z = (state += 0x9E3779B97F4A7C15ULL);
        z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
        z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
        z = z ^ (z >> 31);
        v = static_cast<float>(
                static_cast<double>(z >> 11) /
                static_cast<double>(1ULL << 53)) * 2.0f - 1.0f;
    }
}

float
Buffer::maxAbsDiff(const Buffer &other) const
{
    require(size() == other.size(),
            "Buffer::maxAbsDiff: size mismatch ", size(), " vs ",
            other.size());
    float worst = 0.0f;
    for (std::size_t i = 0; i < _data.size(); ++i)
        worst = std::max(worst, std::fabs(_data[i] - other._data[i]));
    return worst;
}

} // namespace amos
