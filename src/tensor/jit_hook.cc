#include "jit_hook.hh"

#include <atomic>

namespace amos {

namespace {

std::atomic<const ReferenceJitHook *> g_referenceHook{nullptr};

} // namespace

void
setReferenceJitHook(const ReferenceJitHook *hook)
{
    g_referenceHook.store(hook, std::memory_order_release);
}

const ReferenceJitHook *
referenceJitHook()
{
    return g_referenceHook.load(std::memory_order_acquire);
}

} // namespace amos
