/**
 * @file
 * Registration point for the native-codegen JIT execution tier.
 *
 * The reference executor lives in the low-level tensor library; the
 * JIT tier (src/jit) sits above codegen and mapping and therefore
 * cannot be a link-time dependency here. Instead the executor calls
 * through this hook, which the amos_jit library installs at load
 * time (a static registrar, force-linked via WHOLE_ARCHIVE). When no
 * hook is installed, ExecEngine::Jit degrades to the stride-walk
 * engine with an "jit tier not linked" fallback reason.
 */

#ifndef AMOS_TENSOR_JIT_HOOK_HH
#define AMOS_TENSOR_JIT_HOOK_HH

#include <string>
#include <vector>

#include "tensor/access_walk.hh"
#include "tensor/computation.hh"
#include "tensor/tensor.hh"

namespace amos {

/** JIT entry point for the reference executor's affine nest. */
struct ReferenceJitHook
{
    /**
     * Run `comp` through a jitted native kernel built from the
     * already-compiled walk `plan`. Returns true when the kernel ran
     * (results written to `output`); false — with `why` — when the
     * JIT tier declined and the caller should fall back.
     */
    bool (*run)(const TensorComputation &comp,
                const AccessWalkPlan &plan,
                const std::vector<const Buffer *> &inputs,
                Buffer &output, std::string *why) = nullptr;
};

/** Install (or clear, with nullptr) the reference JIT hook. */
void setReferenceJitHook(const ReferenceJitHook *hook);

/** The installed hook, or nullptr when the JIT tier is not linked. */
const ReferenceJitHook *referenceJitHook();

} // namespace amos

#endif // AMOS_TENSOR_JIT_HOOK_HH
