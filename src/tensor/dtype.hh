/**
 * @file
 * Element data types.
 *
 * Only byte width and a name matter to the framework: numeric
 * execution is done in float regardless (the functional executor
 * checks mapping semantics, not rounding behaviour), while byte
 * widths drive memory-footprint and bandwidth calculations.
 */

#ifndef AMOS_TENSOR_DTYPE_HH
#define AMOS_TENSOR_DTYPE_HH

#include <cstdint>
#include <string>

namespace amos {

/** Supported element types across the modelled accelerators. */
enum class DataType
{
    F16,
    F32,
    I8,
    I32,
    U8,
};

/** Byte width of a data type. */
inline std::int64_t
dtypeBytes(DataType t)
{
    switch (t) {
      case DataType::F16: return 2;
      case DataType::F32: return 4;
      case DataType::I8: return 1;
      case DataType::I32: return 4;
      case DataType::U8: return 1;
    }
    return 0;
}

/** Printable name of a data type. */
inline std::string
dtypeName(DataType t)
{
    switch (t) {
      case DataType::F16: return "f16";
      case DataType::F32: return "f32";
      case DataType::I8: return "i8";
      case DataType::I32: return "i32";
      case DataType::U8: return "u8";
    }
    return "?";
}

} // namespace amos

#endif // AMOS_TENSOR_DTYPE_HH
