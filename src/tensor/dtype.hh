/**
 * @file
 * Element data types.
 *
 * Byte widths drive memory-footprint and bandwidth calculations;
 * since the quantized execution subsystem (src/quant) the dtype also
 * selects the runtime storage lane and the accumulation semantics of
 * the functional engines, and participates in mapping validity (an
 * intrinsic whose operands declare int8 does not accept float
 * software operands — see quant/legality.hh).
 */

#ifndef AMOS_TENSOR_DTYPE_HH
#define AMOS_TENSOR_DTYPE_HH

#include <cstdint>
#include <cstdlib>
#include <string>

namespace amos {

/** Supported element types across the modelled accelerators. */
enum class DataType
{
    F16,
    F32,
    BF16,
    I8,
    I32,
    U8,
};

/**
 * Byte width of a data type (the *modelled* width used for footprint
 * and bandwidth math, not the host storage lane — see
 * Buffer::storageBytes()). The switch is exhaustive on purpose: a new
 * enumerator without a width is a -Wswitch warning here and an abort
 * at runtime, never a silent zero.
 */
inline std::int64_t
dtypeBytes(DataType t)
{
    switch (t) {
      case DataType::F16: return 2;
      case DataType::F32: return 4;
      case DataType::BF16: return 2;
      case DataType::I8: return 1;
      case DataType::I32: return 4;
      case DataType::U8: return 1;
    }
    std::abort(); // unreachable for in-range enumerators
}

/** Printable name of a data type (exhaustive, like dtypeBytes). */
inline std::string
dtypeName(DataType t)
{
    switch (t) {
      case DataType::F16: return "f16";
      case DataType::F32: return "f32";
      case DataType::BF16: return "bf16";
      case DataType::I8: return "i8";
      case DataType::I32: return "i32";
      case DataType::U8: return "u8";
    }
    std::abort(); // unreachable for in-range enumerators
}

/**
 * Host storage lane of a dtype: the element type a Buffer actually
 * holds. f16 and f32 share the host-float lane (f16 keeps its
 * modelled 2-byte footprint but is stored widened, a deliberate
 * simplification); bf16 is stored as its raw 16 bits so rounding is
 * explicit; the integer dtypes are stored exactly.
 */
enum class StorageLane
{
    F32,  ///< host float (declared f16 or f32)
    BF16, ///< uint16_t holding the bf16 bit pattern
    I8,
    U8,
    I32,
};

/** Storage lane of a dtype (exhaustive, like dtypeBytes). */
inline StorageLane
dtypeStorageLane(DataType t)
{
    switch (t) {
      case DataType::F16: return StorageLane::F32;
      case DataType::F32: return StorageLane::F32;
      case DataType::BF16: return StorageLane::BF16;
      case DataType::I8: return StorageLane::I8;
      case DataType::I32: return StorageLane::I32;
      case DataType::U8: return StorageLane::U8;
    }
    std::abort(); // unreachable for in-range enumerators
}

/** Bytes per element as actually stored on the host. */
inline std::int64_t
storageLaneBytes(StorageLane lane)
{
    switch (lane) {
      case StorageLane::F32: return 4;
      case StorageLane::BF16: return 2;
      case StorageLane::I8: return 1;
      case StorageLane::U8: return 1;
      case StorageLane::I32: return 4;
    }
    std::abort(); // unreachable for in-range enumerators
}

} // namespace amos

#endif // AMOS_TENSOR_DTYPE_HH
