/**
 * @file
 * Log-bucketed latency histogram for the serve layer's p50/p95/p99
 * reporting. Buckets grow geometrically from 1 microsecond to ~100
 * seconds, so the relative quantile error is bounded by the bucket
 * growth factor (~12%) at every scale; exact min/max are tracked on
 * the side and clamp the interpolated estimates.
 */

#ifndef AMOS_SUPPORT_HISTOGRAM_HH
#define AMOS_SUPPORT_HISTOGRAM_HH

#include <cstdint>
#include <mutex>
#include <vector>

#include "support/json.hh"

namespace amos {

/** Thread-safe histogram of latencies in milliseconds. */
class LatencyHistogram
{
  public:
    LatencyHistogram();

    /** Record one sample (values <= 0 land in the first bucket). */
    void record(double ms);

    std::uint64_t count() const;

    /** Mean of all recorded samples (0 when empty). */
    double meanMs() const;

    /**
     * Quantile estimate for q in [0, 1] (0 when empty): the
     * geometric midpoint of the bucket holding the q-th sample,
     * clamped to the observed [min, max].
     */
    double quantileMs(double q) const;

    /** {"count":..,"mean_ms":..,"p50_ms":..,"p95_ms":..,"p99_ms":..} */
    Json summaryJson() const;

  private:
    double quantileLocked(double q) const;

    mutable std::mutex _mutex;
    std::vector<std::uint64_t> _buckets;
    std::uint64_t _count = 0;
    double _sum = 0.0;
    double _min = 0.0;
    double _max = 0.0;
};

} // namespace amos

#endif // AMOS_SUPPORT_HISTOGRAM_HH
