/**
 * @file
 * Log-bucketed latency histograms for the serve layer's p50/p95/p99
 * reporting. Buckets grow geometrically from 1 microsecond to ~100
 * seconds, so the relative quantile error is bounded by the bucket
 * growth factor (~12%) at every scale; exact min/max are tracked on
 * the side and clamp the interpolated estimates.
 *
 * Two variants share the bucket scheme:
 *
 *  - LatencyHistogram: cumulative since process start — the classic
 *    "lifetime" summary.
 *
 *  - SlidingWindowHistogram: a ring of epoch buckets covering the
 *    last `windowSeconds`, so quantiles answer "how is the server
 *    behaving *now*" instead of averaging over its entire uptime.
 *    Also derives an SLO breach fraction and burn rate from the
 *    windowed samples.
 */

#ifndef AMOS_SUPPORT_HISTOGRAM_HH
#define AMOS_SUPPORT_HISTOGRAM_HH

#include <chrono>
#include <cstdint>
#include <mutex>
#include <vector>

#include "support/json.hh"

namespace amos {

/** Thread-safe histogram of latencies in milliseconds. */
class LatencyHistogram
{
  public:
    LatencyHistogram();

    /** Record one sample (values <= 0 land in the first bucket). */
    void record(double ms);

    std::uint64_t count() const;

    /** Mean of all recorded samples (0 when empty). */
    double meanMs() const;

    /**
     * Quantile estimate for q in [0, 1] (0 when empty): the
     * geometric midpoint of the bucket holding the q-th sample,
     * clamped to the observed [min, max].
     */
    double quantileMs(double q) const;

    /** {"count":..,"mean_ms":..,"p50_ms":..,"p95_ms":..,"p99_ms":..} */
    Json summaryJson() const;

  private:
    double quantileLocked(double q) const;

    mutable std::mutex _mutex;
    std::vector<std::uint64_t> _buckets;
    std::uint64_t _count = 0;
    double _sum = 0.0;
    double _min = 0.0;
    double _max = 0.0;
};

/**
 * Thread-safe sliding-window histogram: the window is divided into
 * `numEpochs` rotating epoch buckets; a sample lands in the epoch
 * covering its timestamp and an epoch is recycled (zeroed) the first
 * time a newer timestamp maps onto its slot. Queries aggregate only
 * the epochs still inside the window, so results track the last
 * `windowSeconds` of traffic with epoch-granularity slack.
 *
 * Every public method has an `At`-suffixed twin taking an explicit
 * time (seconds since an arbitrary origin; the no-suffix methods use
 * a steady clock anchored at construction). Tests drive the `At`
 * variants for full determinism.
 */
class SlidingWindowHistogram
{
  public:
    explicit SlidingWindowHistogram(double windowSeconds = 60.0,
                                    std::size_t numEpochs = 12);

    void record(double ms);
    void recordAt(double ms, double atSeconds);

    /** Samples inside the window (0 when none / all expired). */
    std::uint64_t windowCount() const;
    std::uint64_t windowCountAt(double atSeconds) const;

    /** Mean of windowed samples (0 when the window is empty). */
    double windowMeanMs() const;
    double windowMeanMsAt(double atSeconds) const;

    /** Windowed quantile, same estimator as LatencyHistogram. */
    double windowQuantileMs(double q) const;
    double windowQuantileMsAt(double q, double atSeconds) const;

    /**
     * Fraction of windowed samples slower than `thresholdMs`,
     * measured at bucket granularity (a bucket counts as breaching
     * when its geometric midpoint exceeds the threshold). Evaluated
     * at query time, so the threshold may change freely — e.g. when
     * the serve layer derives it from the windowed p99.
     */
    double breachFraction(double thresholdMs) const;
    double breachFractionAt(double thresholdMs,
                            double atSeconds) const;

    /**
     * SLO burn rate: breachFraction / errorBudget. 1.0 means the
     * service is burning its error budget exactly as fast as allowed;
     * above 1.0 the SLO will be violated if the window's behaviour
     * persists. Returns 0 when the budget is not positive.
     */
    double burnRate(double thresholdMs, double errorBudget) const;
    double burnRateAt(double thresholdMs, double errorBudget,
                      double atSeconds) const;

    double windowSeconds() const { return _windowSeconds; }

    /**
     * {"window_s":..,"count":..,"mean_ms":..,"p50_ms":..,
     *  "p95_ms":..,"p99_ms":..} — the windowed counterpart of
     * LatencyHistogram::summaryJson.
     */
    Json summaryJson() const;
    Json summaryJsonAt(double atSeconds) const;

  private:
    struct Epoch
    {
        std::int64_t index = -1; // floor(t / epochSeconds), -1 empty
        std::vector<std::uint64_t> buckets;
        std::uint64_t count = 0;
        double sum = 0.0;
        double min = 0.0;
        double max = 0.0;
    };

    /** Merged view of the in-window epochs. */
    struct Merged
    {
        std::vector<std::uint64_t> buckets;
        std::uint64_t count = 0;
        double sum = 0.0;
        double min = 0.0;
        double max = 0.0;
    };

    double nowSeconds() const;
    Merged mergedLocked(double atSeconds) const;
    static double quantileOf(const Merged &merged, double q);

    const double _windowSeconds;
    const double _epochSeconds;

    mutable std::mutex _mutex;
    std::vector<Epoch> _epochs;
    std::chrono::steady_clock::time_point _origin;
};

} // namespace amos

#endif // AMOS_SUPPORT_HISTOGRAM_HH
