/**
 * @file
 * Intrusive-list LRU map: O(1) get/put with eviction of the least
 * recently used entry once capacity is exceeded. The serve layer's
 * in-memory cache tier wraps one of these behind its own mutex; the
 * container itself is deliberately not synchronised so callers can
 * batch several operations under one lock.
 */

#ifndef AMOS_SUPPORT_LRU_HH
#define AMOS_SUPPORT_LRU_HH

#include <cstddef>
#include <list>
#include <optional>
#include <unordered_map>
#include <utility>
#include <vector>

namespace amos {

/** Bounded map with least-recently-used eviction (0 = unbounded). */
template <typename Key, typename Value>
class LruMap
{
  public:
    explicit LruMap(std::size_t capacity = 0) : _capacity(capacity)
    {}

    std::size_t size() const { return _index.size(); }
    std::size_t capacity() const { return _capacity; }

    /** Copy of the value, refreshing recency; nullopt on miss. */
    std::optional<Value>
    get(const Key &key)
    {
        auto it = _index.find(key);
        if (it == _index.end())
            return std::nullopt;
        _order.splice(_order.begin(), _order, it->second);
        return it->second->second;
    }

    /** True without refreshing recency (read-only probe). */
    bool
    contains(const Key &key) const
    {
        return _index.count(key) > 0;
    }

    /**
     * Insert or overwrite; the entry becomes most recent. Returns
     * the evicted key when the insert pushed one out.
     */
    std::optional<Key>
    put(const Key &key, Value value)
    {
        auto it = _index.find(key);
        if (it != _index.end()) {
            it->second->second = std::move(value);
            _order.splice(_order.begin(), _order, it->second);
            return std::nullopt;
        }
        _order.emplace_front(key, std::move(value));
        _index[key] = _order.begin();
        if (_capacity == 0 || _index.size() <= _capacity)
            return std::nullopt;
        Key evicted = _order.back().first;
        _index.erase(evicted);
        _order.pop_back();
        return evicted;
    }

    /**
     * Copy of every (key, value) pair, most recent first. Recency is
     * untouched — a bulk read must not reorder the eviction queue.
     */
    std::vector<std::pair<Key, Value>>
    items() const
    {
        return {_order.begin(), _order.end()};
    }

    void
    clear()
    {
        _order.clear();
        _index.clear();
    }

  private:
    std::size_t _capacity;
    /// Most recent at the front.
    std::list<std::pair<Key, Value>> _order;
    std::unordered_map<
        Key, typename std::list<std::pair<Key, Value>>::iterator>
        _index;
};

} // namespace amos

#endif // AMOS_SUPPORT_LRU_HH
