/**
 * @file
 * Minimal JSON value type with a writer and a recursive-descent
 * parser — enough to persist tuning caches and tool output without
 * an external dependency. Supports null, bool, number (double),
 * string, array, and object.
 */

#ifndef AMOS_SUPPORT_JSON_HH
#define AMOS_SUPPORT_JSON_HH

#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <vector>

namespace amos {

/** A JSON value (tree-owning). */
class Json
{
  public:
    enum class Kind
    {
        Null,
        Bool,
        Number,
        String,
        Array,
        Object,
    };

    Json() : _kind(Kind::Null) {}
    Json(bool b) : _kind(Kind::Bool), _bool(b) {}
    Json(double n) : _kind(Kind::Number), _number(n) {}
    Json(std::int64_t n)
        : _kind(Kind::Number), _number(static_cast<double>(n))
    {}
    Json(int n) : Json(static_cast<std::int64_t>(n)) {}
    Json(const char *s) : _kind(Kind::String), _string(s) {}
    Json(std::string s) : _kind(Kind::String), _string(std::move(s))
    {}

    /** Build an empty array / object. */
    static Json array();
    static Json object();

    Kind kind() const { return _kind; }
    bool isNull() const { return _kind == Kind::Null; }

    /// @name Typed accessors (panic on kind mismatch).
    /// @{
    bool asBool() const;
    double asNumber() const;
    std::int64_t asInt() const;
    const std::string &asString() const;
    /// @}

    /// @name Array operations.
    /// @{
    void push(Json value);
    std::size_t size() const;
    const Json &at(std::size_t index) const;
    /// @}

    /// @name Object operations.
    /// @{
    void set(const std::string &key, Json value);
    bool has(const std::string &key) const;
    /** Panics when the key is absent. */
    const Json &get(const std::string &key) const;
    const std::map<std::string, Json> &entries() const;
    /// @}

    /** Serialise (stable key order, no insignificant whitespace). */
    std::string dump() const;

    /**
     * Parse a JSON document. Raises fatal() on malformed input
     * (user-supplied files).
     */
    static Json parse(const std::string &text);

  private:
    Kind _kind;
    bool _bool = false;
    double _number = 0.0;
    std::string _string;
    std::vector<Json> _array;
    std::map<std::string, Json> _object;
};

} // namespace amos

#endif // AMOS_SUPPORT_JSON_HH
