#include "bit_matrix.hh"

#include <cstdint>

#include "logging.hh"

namespace amos {

BitMatrix::BitMatrix(std::size_t rows, std::size_t cols)
    : _rows(rows), _cols(cols), _data(rows * cols, 0)
{
}

BitMatrix
BitMatrix::fromRows(const std::vector<std::vector<int>> &rows)
{
    std::size_t n_rows = rows.size();
    std::size_t n_cols = n_rows == 0 ? 0 : rows.front().size();
    BitMatrix m(n_rows, n_cols);
    for (std::size_t r = 0; r < n_rows; ++r) {
        require(rows[r].size() == n_cols,
                "BitMatrix::fromRows: ragged row ", r);
        for (std::size_t c = 0; c < n_cols; ++c)
            m.set(r, c, rows[r][c] != 0);
    }
    return m;
}

BitMatrix
BitMatrix::identity(std::size_t n)
{
    BitMatrix m(n, n);
    for (std::size_t i = 0; i < n; ++i)
        m.set(i, i, true);
    return m;
}

bool
BitMatrix::at(std::size_t r, std::size_t c) const
{
    require(r < _rows && c < _cols,
            "BitMatrix::at out of range: (", r, ",", c, ") in ",
            _rows, "x", _cols);
    return _data[index(r, c)] != 0;
}

void
BitMatrix::set(std::size_t r, std::size_t c, bool value)
{
    require(r < _rows && c < _cols,
            "BitMatrix::set out of range: (", r, ",", c, ") in ",
            _rows, "x", _cols);
    _data[index(r, c)] = value ? 1 : 0;
}

BitMatrix
BitMatrix::star(const BitMatrix &other) const
{
    require(_cols == other._rows,
            "BitMatrix::star shape mismatch: ", _rows, "x", _cols,
            " * ", other._rows, "x", other._cols);
    BitMatrix out(_rows, other._cols);
    for (std::size_t r = 0; r < _rows; ++r) {
        for (std::size_t k = 0; k < _cols; ++k) {
            if (!at(r, k))
                continue;
            for (std::size_t c = 0; c < other._cols; ++c) {
                if (other.at(k, c))
                    out.set(r, c, true);
            }
        }
    }
    return out;
}

BitMatrix
BitMatrix::transposed() const
{
    BitMatrix out(_cols, _rows);
    for (std::size_t r = 0; r < _rows; ++r)
        for (std::size_t c = 0; c < _cols; ++c)
            out.set(c, r, at(r, c));
    return out;
}

std::vector<bool>
BitMatrix::column(std::size_t c) const
{
    std::vector<bool> out(_rows);
    for (std::size_t r = 0; r < _rows; ++r)
        out[r] = at(r, c);
    return out;
}

std::vector<bool>
BitMatrix::row(std::size_t r) const
{
    std::vector<bool> out(_cols);
    for (std::size_t c = 0; c < _cols; ++c)
        out[c] = at(r, c);
    return out;
}

bool
BitMatrix::columnIsZero(std::size_t c) const
{
    for (std::size_t r = 0; r < _rows; ++r)
        if (at(r, c))
            return false;
    return true;
}

std::size_t
BitMatrix::popcount() const
{
    std::size_t n = 0;
    for (auto v : _data)
        n += v != 0;
    return n;
}

bool
BitMatrix::operator==(const BitMatrix &other) const
{
    return _rows == other._rows && _cols == other._cols &&
           _data == other._data;
}

std::string
BitMatrix::toString() const
{
    std::string out;
    out.reserve(_rows * (_cols * 2 + 1));
    for (std::size_t r = 0; r < _rows; ++r) {
        for (std::size_t c = 0; c < _cols; ++c) {
            out += at(r, c) ? '1' : '0';
            if (c + 1 < _cols)
                out += ' ';
        }
        out += '\n';
    }
    return out;
}

} // namespace amos
