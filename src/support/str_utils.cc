#include "str_utils.hh"

#include <algorithm>
#include <cstdio>

#include "logging.hh"

namespace amos {

std::string
join(const std::vector<std::string> &items, const std::string &sep)
{
    std::string out;
    for (std::size_t i = 0; i < items.size(); ++i) {
        if (i)
            out += sep;
        out += items[i];
    }
    return out;
}

std::string
padLeft(const std::string &s, std::size_t width)
{
    if (s.size() >= width)
        return s;
    return std::string(width - s.size(), ' ') + s;
}

std::string
padRight(const std::string &s, std::size_t width)
{
    if (s.size() >= width)
        return s;
    return s + std::string(width - s.size(), ' ');
}

std::string
fmtDouble(double v, int precision)
{
    char buf[64];
    std::snprintf(buf, sizeof(buf), "%.*f", precision, v);
    return buf;
}

TextTable::TextTable(std::vector<std::string> headers)
    : _headers(std::move(headers))
{
}

void
TextTable::addRow(std::vector<std::string> row)
{
    require(row.size() == _headers.size(),
            "TextTable::addRow: expected ", _headers.size(),
            " cells, got ", row.size());
    _rows.push_back(std::move(row));
}

std::string
TextTable::toString() const
{
    std::vector<std::size_t> widths(_headers.size());
    for (std::size_t c = 0; c < _headers.size(); ++c)
        widths[c] = _headers[c].size();
    for (const auto &row : _rows)
        for (std::size_t c = 0; c < row.size(); ++c)
            widths[c] = std::max(widths[c], row[c].size());

    auto render_row = [&](const std::vector<std::string> &row) {
        std::string line;
        for (std::size_t c = 0; c < row.size(); ++c) {
            line += padRight(row[c], widths[c]);
            if (c + 1 < row.size())
                line += "  ";
        }
        line += '\n';
        return line;
    };

    std::string out = render_row(_headers);
    std::size_t total = 0;
    for (auto w : widths)
        total += w + 2;
    out += std::string(total, '-') + '\n';
    for (const auto &row : _rows)
        out += render_row(row);
    return out;
}

} // namespace amos
