#include "flight_recorder.hh"

#include <unistd.h>

#include <algorithm>
#include <cstring>

namespace amos {

namespace {

constexpr std::size_t kDefaultCapacity = 4096;

thread_local std::uint64_t tls_flight_seq = 0;

/**
 * One-entry thread-local (recorder, ring) cache, mirroring the
 * tracer's TlsBufferCache: only the global recorder is hot, tests
 * with private instances re-register on the owner switch.
 */
struct TlsRingCache
{
    const void *owner = nullptr;
    void *ring = nullptr;
};
thread_local TlsRingCache tls_ring_cache;

/// @name Async-signal-safe formatting (crashDump only).
/// @{

void
safeWrite(int fd, const char *data, std::size_t len)
{
    while (len > 0) {
        ssize_t n = ::write(fd, data, len);
        if (n <= 0)
            return; // best effort; EINTR retry is not worth it here
        data += n;
        len -= static_cast<std::size_t>(n);
    }
}

void
safeWriteStr(int fd, const char *s)
{
    safeWrite(fd, s, std::strlen(s));
}

/** Unsigned decimal into a caller buffer; returns the length. */
std::size_t
formatU64(std::uint64_t value, char *buf)
{
    char tmp[24];
    std::size_t n = 0;
    do {
        tmp[n++] = static_cast<char>('0' + value % 10);
        value /= 10;
    } while (value > 0);
    for (std::size_t i = 0; i < n; ++i)
        buf[i] = tmp[n - 1 - i];
    buf[n] = '\0';
    return n;
}

void
safeWriteU64(int fd, std::uint64_t value)
{
    char buf[24];
    safeWrite(fd, buf, formatU64(value, buf));
}

/** Microseconds as an integer — sub-us precision is noise here. */
void
safeWriteUs(int fd, double us)
{
    if (us < 0)
        us = 0;
    safeWriteU64(fd, static_cast<std::uint64_t>(us));
}

/// @}

} // namespace

FlightRecorder::FlightRecorder()
    : _capacity(kDefaultCapacity),
      _epoch(std::chrono::steady_clock::now())
{}

void
FlightRecorder::setEnabled(bool enabled)
{
    _enabled.store(enabled, std::memory_order_relaxed);
}

std::uint64_t
FlightRecorder::beginRequest()
{
    return _nextSeq.fetch_add(1, std::memory_order_relaxed);
}

std::uint64_t
FlightRecorder::currentSeq()
{
    return tls_flight_seq;
}

FlightRecorder::Ring &
FlightRecorder::threadRing()
{
    if (tls_ring_cache.owner == this)
        return *static_cast<Ring *>(tls_ring_cache.ring);
    auto ring = std::make_shared<Ring>();
    ring->slots.resize(_capacity.load(std::memory_order_relaxed));
    {
        std::lock_guard<std::mutex> lock(_registryMutex);
        ring->tid = _nextTid++;
        _rings.push_back(ring);
    }
    // The shared_ptr in _rings keeps the ring alive for the
    // recorder's lifetime; the raw cached pointer stays valid after
    // the owning thread exits.
    tls_ring_cache.owner = this;
    tls_ring_cache.ring = ring.get();
    return *ring;
}

void
FlightRecorder::push(const FlightRecord &record)
{
    Ring &ring = threadRing();
    std::lock_guard<std::mutex> lock(ring.mutex);
    if (ring.slots.empty())
        return;
    if (ring.used == ring.slots.size())
        _overwritten.fetch_add(1, std::memory_order_relaxed);
    else
        ++ring.used;
    FlightRecord &slot = ring.slots[ring.next];
    slot = record;
    slot.tid = ring.tid;
    ring.next = (ring.next + 1) % ring.slots.size();
}

template <typename Fn>
void
FlightRecorder::forEachRecord(Fn &&fn) const
{
    std::lock_guard<std::mutex> lock(_registryMutex);
    for (const auto &ring : _rings) {
        std::lock_guard<std::mutex> ring_lock(ring->mutex);
        std::size_t size = ring->slots.size();
        if (size == 0 || ring->used == 0)
            continue;
        // Oldest-first: the ring wraps at `next`.
        std::size_t start =
            (ring->next + size - ring->used) % size;
        for (std::size_t i = 0; i < ring->used; ++i)
            fn(ring->slots[(start + i) % size]);
    }
}

std::vector<FlightRecord>
FlightRecorder::harvest(std::uint64_t seq) const
{
    std::vector<FlightRecord> out;
    forEachRecord([&](const FlightRecord &r) {
        if (r.seq == seq)
            out.push_back(r);
    });
    std::sort(out.begin(), out.end(),
              [](const FlightRecord &a, const FlightRecord &b) {
                  if (a.startUs != b.startUs)
                      return a.startUs < b.startUs;
                  return a.durUs > b.durUs;
              });
    return out;
}

namespace {

struct FlightTreeNode
{
    const FlightRecord *record;
    std::vector<std::size_t> children;
};

Json
flightNodeToJson(const std::vector<FlightTreeNode> &nodes,
                 std::size_t index)
{
    const FlightRecord &r = *nodes[index].record;
    Json out = Json::object();
    out.set("name", Json(r.name ? r.name : ""));
    out.set("cat", Json(r.category ? r.category : ""));
    out.set("start_us", Json(r.startUs));
    out.set("dur_us", Json(r.durUs));
    if (r.args[0] != '\0')
        out.set("args", Json(std::string(r.args)));
    if (!nodes[index].children.empty()) {
        Json children = Json::array();
        for (auto c : nodes[index].children)
            children.push(flightNodeToJson(nodes, c));
        out.set("children", std::move(children));
    }
    return out;
}

/** Same time-containment nesting as Tracer::spanTreeFor. */
Json
recordsToTree(const std::vector<FlightRecord> &records)
{
    std::vector<FlightTreeNode> nodes;
    std::vector<std::size_t> roots;
    std::vector<std::size_t> stack;
    for (const auto &record : records) {
        nodes.push_back({&record, {}});
        std::size_t index = nodes.size() - 1;
        while (!stack.empty()) {
            const FlightRecord &top = *nodes[stack.back()].record;
            if (record.startUs >= top.startUs &&
                record.startUs + record.durUs <=
                    top.startUs + top.durUs + 1e-6)
                break;
            stack.pop_back();
        }
        if (stack.empty())
            roots.push_back(index);
        else
            nodes[stack.back()].children.push_back(index);
        stack.push_back(index);
    }
    Json tree = Json::array();
    for (auto r : roots)
        tree.push(flightNodeToJson(nodes, r));
    return tree;
}

} // namespace

Json
FlightRecorder::spanTreeFor(std::uint64_t seq) const
{
    Json out = Json::object();
    out.set("flight_seq", Json(static_cast<std::int64_t>(seq)));
    out.set("spans", recordsToTree(harvest(seq)));
    return out;
}

Json
FlightRecorder::dumpJson() const
{
    std::vector<FlightRecord> all;
    forEachRecord(
        [&](const FlightRecord &r) { all.push_back(r); });
    std::sort(all.begin(), all.end(),
              [](const FlightRecord &a, const FlightRecord &b) {
                  return a.startUs < b.startUs;
              });
    Json records = Json::array();
    for (const auto &r : all) {
        Json rec = Json::object();
        rec.set("name", Json(r.name ? r.name : ""));
        rec.set("cat", Json(r.category ? r.category : ""));
        rec.set("seq", Json(static_cast<std::int64_t>(r.seq)));
        rec.set("tid", Json(static_cast<std::int64_t>(r.tid)));
        rec.set("start_us", Json(r.startUs));
        rec.set("dur_us", Json(r.durUs));
        if (r.args[0] != '\0')
            rec.set("args", Json(std::string(r.args)));
        records.push(std::move(rec));
    }
    Json out = Json::object();
    out.set("records", std::move(records));
    out.set("overwritten",
            Json(static_cast<std::int64_t>(overwrittenCount())));
    return out;
}

std::size_t
FlightRecorder::recordCount() const
{
    std::size_t count = 0;
    std::lock_guard<std::mutex> lock(_registryMutex);
    for (const auto &ring : _rings) {
        std::lock_guard<std::mutex> ring_lock(ring->mutex);
        count += ring->used;
    }
    return count;
}

std::uint64_t
FlightRecorder::overwrittenCount() const
{
    return _overwritten.load(std::memory_order_relaxed);
}

void
FlightRecorder::clear()
{
    std::lock_guard<std::mutex> lock(_registryMutex);
    for (auto &ring : _rings) {
        std::lock_guard<std::mutex> ring_lock(ring->mutex);
        ring->next = 0;
        ring->used = 0;
    }
}

void
FlightRecorder::crashDump(int fd) const noexcept
{
    // Deliberately lock-free: the faulting thread may hold a ring
    // mutex (or the registry mutex — then we lose the dump, not the
    // process). _rings only ever grows and shared_ptrs are never
    // removed, so walking a stale snapshot of the vector is safe in
    // practice for a best-effort crash artifact.
    safeWriteStr(fd, "=== amos flight recorder dump ===\n");
    for (std::size_t ri = 0; ri < _rings.size(); ++ri) {
        const Ring *ring = _rings[ri].get();
        if (ring == nullptr)
            continue;
        std::size_t size = ring->slots.size();
        std::size_t used = ring->used;
        if (size == 0 || used == 0 || used > size)
            continue;
        std::size_t start = (ring->next + size - used) % size;
        for (std::size_t i = 0; i < used; ++i) {
            const FlightRecord &r =
                ring->slots[(start + i) % size];
            safeWriteStr(fd, "flight tid=");
            safeWriteU64(fd, ring->tid);
            safeWriteStr(fd, " seq=");
            safeWriteU64(fd, r.seq);
            safeWriteStr(fd, " start_us=");
            safeWriteUs(fd, r.startUs);
            safeWriteStr(fd, " dur_us=");
            safeWriteUs(fd, r.durUs);
            safeWriteStr(fd, " ");
            if (r.name != nullptr)
                safeWriteStr(fd, r.name);
            if (r.args[0] != '\0') {
                safeWriteStr(fd, " [");
                safeWriteStr(fd, r.args);
                safeWriteStr(fd, "]");
            }
            safeWriteStr(fd, "\n");
        }
    }
    safeWriteStr(fd, "=== end flight recorder dump ===\n");
}

void
FlightRecorder::setCapacityPerThread(std::size_t capacity)
{
    _capacity.store(capacity, std::memory_order_relaxed);
}

std::size_t
FlightRecorder::capacityPerThread() const
{
    return _capacity.load(std::memory_order_relaxed);
}

FlightRecorder &
FlightRecorder::global()
{
    static FlightRecorder recorder;
    return recorder;
}

FlightScope::FlightScope(std::uint64_t seq)
    : _previous(tls_flight_seq)
{
    tls_flight_seq = seq;
}

FlightScope::~FlightScope()
{
    tls_flight_seq = _previous;
}

} // namespace amos
