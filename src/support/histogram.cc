#include "histogram.hh"

#include <algorithm>
#include <cmath>

namespace amos {

namespace {

// Buckets span [kLoMs, kLoMs * kGrowth^kBuckets): 1us .. ~128s with
// a 1.25x growth factor needs ceil(log(1.28e8)/log(1.25)) = 84.
constexpr double kLoMs = 1e-3;
constexpr double kGrowth = 1.25;
constexpr std::size_t kBuckets = 84;

std::size_t
bucketFor(double ms)
{
    if (ms <= kLoMs)
        return 0;
    auto idx = static_cast<std::size_t>(
        std::log(ms / kLoMs) / std::log(kGrowth));
    return std::min(idx, kBuckets - 1);
}

/** Geometric midpoint of a bucket. */
double
bucketMid(std::size_t idx)
{
    double lo = kLoMs * std::pow(kGrowth, static_cast<double>(idx));
    return lo * std::sqrt(kGrowth);
}

} // namespace

LatencyHistogram::LatencyHistogram() : _buckets(kBuckets, 0) {}

void
LatencyHistogram::record(double ms)
{
    std::lock_guard<std::mutex> lock(_mutex);
    ++_buckets[bucketFor(ms)];
    if (_count == 0) {
        _min = _max = ms;
    } else {
        _min = std::min(_min, ms);
        _max = std::max(_max, ms);
    }
    ++_count;
    _sum += ms;
}

std::uint64_t
LatencyHistogram::count() const
{
    std::lock_guard<std::mutex> lock(_mutex);
    return _count;
}

double
LatencyHistogram::meanMs() const
{
    std::lock_guard<std::mutex> lock(_mutex);
    return _count == 0 ? 0.0 : _sum / static_cast<double>(_count);
}

double
LatencyHistogram::quantileLocked(double q) const
{
    if (_count == 0)
        return 0.0;
    q = std::clamp(q, 0.0, 1.0);
    // Rank of the q-th sample, 1-based, ceil for the usual "at least
    // a fraction q of samples are <= the answer" reading.
    auto rank = static_cast<std::uint64_t>(
        std::ceil(q * static_cast<double>(_count)));
    rank = std::max<std::uint64_t>(rank, 1);
    std::uint64_t seen = 0;
    for (std::size_t i = 0; i < _buckets.size(); ++i) {
        seen += _buckets[i];
        if (seen >= rank)
            return std::clamp(bucketMid(i), _min, _max);
    }
    return _max;
}

double
LatencyHistogram::quantileMs(double q) const
{
    std::lock_guard<std::mutex> lock(_mutex);
    return quantileLocked(q);
}

Json
LatencyHistogram::summaryJson() const
{
    std::lock_guard<std::mutex> lock(_mutex);
    Json out = Json::object();
    out.set("count", Json(static_cast<std::int64_t>(_count)));
    out.set("mean_ms",
            Json(_count ? _sum / static_cast<double>(_count) : 0.0));
    out.set("p50_ms", Json(quantileLocked(0.50)));
    out.set("p95_ms", Json(quantileLocked(0.95)));
    out.set("p99_ms", Json(quantileLocked(0.99)));
    return out;
}

SlidingWindowHistogram::SlidingWindowHistogram(double windowSeconds,
                                               std::size_t numEpochs)
    : _windowSeconds(windowSeconds),
      _epochSeconds(windowSeconds /
                    static_cast<double>(numEpochs ? numEpochs : 1)),
      _epochs(numEpochs ? numEpochs : 1),
      _origin(std::chrono::steady_clock::now())
{
    for (auto &epoch : _epochs)
        epoch.buckets.assign(kBuckets, 0);
}

double
SlidingWindowHistogram::nowSeconds() const
{
    return std::chrono::duration<double>(
               std::chrono::steady_clock::now() - _origin)
        .count();
}

void
SlidingWindowHistogram::record(double ms)
{
    recordAt(ms, nowSeconds());
}

void
SlidingWindowHistogram::recordAt(double ms, double atSeconds)
{
    if (atSeconds < 0)
        atSeconds = 0;
    auto index = static_cast<std::int64_t>(atSeconds / _epochSeconds);
    std::lock_guard<std::mutex> lock(_mutex);
    Epoch &epoch =
        _epochs[static_cast<std::size_t>(index) % _epochs.size()];
    if (epoch.index != index) {
        // The slot last held an expired epoch — recycle it.
        epoch.index = index;
        std::fill(epoch.buckets.begin(), epoch.buckets.end(), 0);
        epoch.count = 0;
        epoch.sum = 0.0;
    }
    ++epoch.buckets[bucketFor(ms)];
    if (epoch.count == 0) {
        epoch.min = epoch.max = ms;
    } else {
        epoch.min = std::min(epoch.min, ms);
        epoch.max = std::max(epoch.max, ms);
    }
    ++epoch.count;
    epoch.sum += ms;
}

SlidingWindowHistogram::Merged
SlidingWindowHistogram::mergedLocked(double atSeconds) const
{
    Merged merged;
    merged.buckets.assign(kBuckets, 0);
    if (atSeconds < 0)
        atSeconds = 0;
    auto current =
        static_cast<std::int64_t>(atSeconds / _epochSeconds);
    auto oldest =
        current - static_cast<std::int64_t>(_epochs.size()) + 1;
    for (const auto &epoch : _epochs) {
        if (epoch.index < oldest || epoch.index > current ||
            epoch.count == 0)
            continue;
        for (std::size_t i = 0; i < kBuckets; ++i)
            merged.buckets[i] += epoch.buckets[i];
        if (merged.count == 0) {
            merged.min = epoch.min;
            merged.max = epoch.max;
        } else {
            merged.min = std::min(merged.min, epoch.min);
            merged.max = std::max(merged.max, epoch.max);
        }
        merged.count += epoch.count;
        merged.sum += epoch.sum;
    }
    return merged;
}

double
SlidingWindowHistogram::quantileOf(const Merged &merged, double q)
{
    if (merged.count == 0)
        return 0.0;
    q = std::clamp(q, 0.0, 1.0);
    auto rank = static_cast<std::uint64_t>(
        std::ceil(q * static_cast<double>(merged.count)));
    rank = std::max<std::uint64_t>(rank, 1);
    std::uint64_t seen = 0;
    for (std::size_t i = 0; i < merged.buckets.size(); ++i) {
        seen += merged.buckets[i];
        if (seen >= rank)
            return std::clamp(bucketMid(i), merged.min, merged.max);
    }
    return merged.max;
}

std::uint64_t
SlidingWindowHistogram::windowCount() const
{
    return windowCountAt(nowSeconds());
}

std::uint64_t
SlidingWindowHistogram::windowCountAt(double atSeconds) const
{
    std::lock_guard<std::mutex> lock(_mutex);
    return mergedLocked(atSeconds).count;
}

double
SlidingWindowHistogram::windowMeanMs() const
{
    return windowMeanMsAt(nowSeconds());
}

double
SlidingWindowHistogram::windowMeanMsAt(double atSeconds) const
{
    std::lock_guard<std::mutex> lock(_mutex);
    Merged merged = mergedLocked(atSeconds);
    return merged.count == 0
               ? 0.0
               : merged.sum / static_cast<double>(merged.count);
}

double
SlidingWindowHistogram::windowQuantileMs(double q) const
{
    return windowQuantileMsAt(q, nowSeconds());
}

double
SlidingWindowHistogram::windowQuantileMsAt(double q,
                                           double atSeconds) const
{
    std::lock_guard<std::mutex> lock(_mutex);
    return quantileOf(mergedLocked(atSeconds), q);
}

double
SlidingWindowHistogram::breachFraction(double thresholdMs) const
{
    return breachFractionAt(thresholdMs, nowSeconds());
}

double
SlidingWindowHistogram::breachFractionAt(double thresholdMs,
                                         double atSeconds) const
{
    std::lock_guard<std::mutex> lock(_mutex);
    Merged merged = mergedLocked(atSeconds);
    if (merged.count == 0)
        return 0.0;
    std::uint64_t breaching = 0;
    for (std::size_t i = 0; i < merged.buckets.size(); ++i)
        if (bucketMid(i) > thresholdMs)
            breaching += merged.buckets[i];
    return static_cast<double>(breaching) /
           static_cast<double>(merged.count);
}

double
SlidingWindowHistogram::burnRate(double thresholdMs,
                                 double errorBudget) const
{
    return burnRateAt(thresholdMs, errorBudget, nowSeconds());
}

double
SlidingWindowHistogram::burnRateAt(double thresholdMs,
                                   double errorBudget,
                                   double atSeconds) const
{
    if (errorBudget <= 0.0)
        return 0.0;
    return breachFractionAt(thresholdMs, atSeconds) / errorBudget;
}

Json
SlidingWindowHistogram::summaryJson() const
{
    return summaryJsonAt(nowSeconds());
}

Json
SlidingWindowHistogram::summaryJsonAt(double atSeconds) const
{
    std::lock_guard<std::mutex> lock(_mutex);
    Merged merged = mergedLocked(atSeconds);
    Json out = Json::object();
    out.set("window_s", Json(_windowSeconds));
    out.set("count", Json(static_cast<std::int64_t>(merged.count)));
    out.set("mean_ms",
            Json(merged.count
                     ? merged.sum / static_cast<double>(merged.count)
                     : 0.0));
    out.set("p50_ms", Json(quantileOf(merged, 0.50)));
    out.set("p95_ms", Json(quantileOf(merged, 0.95)));
    out.set("p99_ms", Json(quantileOf(merged, 0.99)));
    return out;
}

} // namespace amos
