#include "histogram.hh"

#include <algorithm>
#include <cmath>

namespace amos {

namespace {

// Buckets span [kLoMs, kLoMs * kGrowth^kBuckets): 1us .. ~128s with
// a 1.25x growth factor needs ceil(log(1.28e8)/log(1.25)) = 84.
constexpr double kLoMs = 1e-3;
constexpr double kGrowth = 1.25;
constexpr std::size_t kBuckets = 84;

std::size_t
bucketFor(double ms)
{
    if (ms <= kLoMs)
        return 0;
    auto idx = static_cast<std::size_t>(
        std::log(ms / kLoMs) / std::log(kGrowth));
    return std::min(idx, kBuckets - 1);
}

/** Geometric midpoint of a bucket. */
double
bucketMid(std::size_t idx)
{
    double lo = kLoMs * std::pow(kGrowth, static_cast<double>(idx));
    return lo * std::sqrt(kGrowth);
}

} // namespace

LatencyHistogram::LatencyHistogram() : _buckets(kBuckets, 0) {}

void
LatencyHistogram::record(double ms)
{
    std::lock_guard<std::mutex> lock(_mutex);
    ++_buckets[bucketFor(ms)];
    if (_count == 0) {
        _min = _max = ms;
    } else {
        _min = std::min(_min, ms);
        _max = std::max(_max, ms);
    }
    ++_count;
    _sum += ms;
}

std::uint64_t
LatencyHistogram::count() const
{
    std::lock_guard<std::mutex> lock(_mutex);
    return _count;
}

double
LatencyHistogram::meanMs() const
{
    std::lock_guard<std::mutex> lock(_mutex);
    return _count == 0 ? 0.0 : _sum / static_cast<double>(_count);
}

double
LatencyHistogram::quantileLocked(double q) const
{
    if (_count == 0)
        return 0.0;
    q = std::clamp(q, 0.0, 1.0);
    // Rank of the q-th sample, 1-based, ceil for the usual "at least
    // a fraction q of samples are <= the answer" reading.
    auto rank = static_cast<std::uint64_t>(
        std::ceil(q * static_cast<double>(_count)));
    rank = std::max<std::uint64_t>(rank, 1);
    std::uint64_t seen = 0;
    for (std::size_t i = 0; i < _buckets.size(); ++i) {
        seen += _buckets[i];
        if (seen >= rank)
            return std::clamp(bucketMid(i), _min, _max);
    }
    return _max;
}

double
LatencyHistogram::quantileMs(double q) const
{
    std::lock_guard<std::mutex> lock(_mutex);
    return quantileLocked(q);
}

Json
LatencyHistogram::summaryJson() const
{
    std::lock_guard<std::mutex> lock(_mutex);
    Json out = Json::object();
    out.set("count", Json(static_cast<std::int64_t>(_count)));
    out.set("mean_ms",
            Json(_count ? _sum / static_cast<double>(_count) : 0.0));
    out.set("p50_ms", Json(quantileLocked(0.50)));
    out.set("p95_ms", Json(quantileLocked(0.95)));
    out.set("p99_ms", Json(quantileLocked(0.99)));
    return out;
}

} // namespace amos
