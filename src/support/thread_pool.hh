/**
 * @file
 * Fixed-size thread pool and a parallel-for helper.
 *
 * The tuner fans candidate evaluation and simulator measurements out
 * across worker threads. The pool is deliberately simple — a shared
 * task queue behind one mutex, no work stealing — because the units
 * of work (kernel lowering + simulation, ~10-100us each) are large
 * enough that queue contention is negligible.
 *
 * Determinism contract: parallelFor() only distributes loop
 * *indices*; it makes no ordering promises between bodies. Callers
 * that need run-to-run reproducibility (everything in this repo)
 * must make each body depend only on its index — per-index RNG
 * streams, per-index output slots — and fold results together
 * serially afterwards. See docs/exploration.md.
 *
 * Observability: parallelFor propagates the caller's TraceContext
 * (per-request trace id, see support/trace.hh) onto every worker it
 * borrows, so spans opened inside bodies stay attributed to the
 * request that forked them.
 */

#ifndef AMOS_SUPPORT_THREAD_POOL_HH
#define AMOS_SUPPORT_THREAD_POOL_HH

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <functional>
#include <future>
#include <mutex>
#include <thread>
#include <vector>

namespace amos {

/** Fixed-size worker pool with a shared FIFO task queue. */
class ThreadPool
{
  public:
    /** @param numThreads Worker count; 0 = one per hardware thread. */
    explicit ThreadPool(std::size_t numThreads = 0);
    ~ThreadPool();

    ThreadPool(const ThreadPool &) = delete;
    ThreadPool &operator=(const ThreadPool &) = delete;

    std::size_t size() const { return _workers.size(); }

    /** Tasks enqueued and not yet picked up by a worker. */
    std::size_t queueDepth() const;

    /**
     * Enqueue a task. The returned future completes when the task
     * ran; an exception thrown by the task is captured and rethrown
     * from future::get().
     */
    std::future<void> submit(std::function<void()> task);

    /**
     * The process-wide pool used by parallelFor(), created lazily
     * with one worker per hardware thread.
     */
    static ThreadPool &global();

    /** Map a user thread-count knob: <=0 = hardware concurrency. */
    static std::size_t resolveThreads(int requested);

  private:
    void workerLoop();

    std::vector<std::thread> _workers;
    std::deque<std::packaged_task<void()>> _queue;
    mutable std::mutex _mutex;
    std::condition_variable _cv;
    bool _stopping = false;
};

/**
 * True on threads currently executing inside a parallelFor body (or
 * on pool workers). Nested parallelFor calls detect this and run
 * inline, which keeps arbitrary nesting deadlock-free.
 */
bool insideParallelRegion();

/**
 * Run body(0..n-1) across up to numThreads workers (0 = hardware
 * concurrency, 1 = plain serial loop). The calling thread
 * participates, so progress never depends on pool availability.
 * Blocks until every index completed; the first exception thrown by
 * any body is rethrown after the loop drains.
 */
void parallelFor(std::size_t n,
                 const std::function<void(std::size_t)> &body,
                 int numThreads = 0);

} // namespace amos

#endif // AMOS_SUPPORT_THREAD_POOL_HH
