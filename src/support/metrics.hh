/**
 * @file
 * Unified metrics: a registry of named monotonic counters and gauges
 * shared by the compiler, the cache tiers, and the serve layer.
 *
 * Names are dotted paths grouped by subsystem ("serve.requests",
 * "cache.memory_hits", ...); docs/observability.md lists the full
 * inventory. counter()/gauge() create on first use and return a
 * reference that stays valid for the registry's lifetime, so hot
 * paths resolve a metric once and then touch a single relaxed
 * atomic.
 *
 * A registry is instance-scoped on purpose: every CompileService
 * (and every TieredCache without a service) owns its own, so tests
 * and embedded uses see exact counts instead of process-global
 * accumulation. MetricsRegistry::global() exists for tools that want
 * one process-wide sink (amos_cli).
 */

#ifndef AMOS_SUPPORT_METRICS_HH
#define AMOS_SUPPORT_METRICS_HH

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <utility>
#include <vector>

#include "support/json.hh"

namespace amos {

/** Monotonic counter (relaxed atomics; read for reporting only). */
class MetricCounter
{
  public:
    void
    add(std::uint64_t n = 1)
    {
        _value.fetch_add(n, std::memory_order_relaxed);
    }

    std::uint64_t
    value() const
    {
        return _value.load(std::memory_order_relaxed);
    }

  private:
    std::atomic<std::uint64_t> _value{0};
};

/** Last-write-wins instantaneous value. */
class MetricGauge
{
  public:
    void
    set(double value)
    {
        _value.store(value, std::memory_order_relaxed);
    }

    double
    value() const
    {
        return _value.load(std::memory_order_relaxed);
    }

  private:
    std::atomic<double> _value{0.0};
};

/** Thread-safe registry of named counters and gauges. */
class MetricsRegistry
{
  public:
    MetricsRegistry() = default;

    MetricsRegistry(const MetricsRegistry &) = delete;
    MetricsRegistry &operator=(const MetricsRegistry &) = delete;

    /**
     * The counter of this name, created on first use. The reference
     * stays valid for the registry's lifetime.
     */
    MetricCounter &counter(const std::string &name);

    /** The gauge of this name, created on first use. */
    MetricGauge &gauge(const std::string &name);

    /** Snapshot of all counter values, by name. */
    std::map<std::string, std::uint64_t> counterValues() const;

    /**
     * Stable (name, counter) references for every counter currently
     * registered, in name order. The serve layer resolves this list
     * once and then snapshots values with relaxed loads per request
     * — cheaper than allocating a fresh map on a hot path. Counters
     * registered later are not in the list until it is re-fetched.
     */
    std::vector<std::pair<std::string, const MetricCounter *>>
    counterRefs() const;

    /** Snapshot of all gauge values, by name. */
    std::map<std::string, double> gaugeValues() const;

    /** Flat JSON object of every counter and gauge, key-sorted. */
    Json toJson() const;

    /** Process-wide registry for one-shot tools. */
    static MetricsRegistry &global();

  private:
    mutable std::mutex _mutex;
    std::map<std::string, std::unique_ptr<MetricCounter>> _counters;
    std::map<std::string, std::unique_ptr<MetricGauge>> _gauges;
};

} // namespace amos

#endif // AMOS_SUPPORT_METRICS_HH
