#include "subprocess.hh"

#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <sstream>

#include "support/logging.hh"

namespace amos {

CommandResult
runShellCommand(const std::string &commandLine)
{
    CommandResult result;
    int status = std::system(commandLine.c_str());
    if (status < 0)
        return result; // the shell could not be spawned at all
    result.ran = true;
#ifdef WIFEXITED
    if (WIFEXITED(status))
        result.exitCode = WEXITSTATUS(status);
    else
        result.exitCode = -1; // killed by a signal
#else
    result.exitCode = status;
#endif
    return result;
}

bool
programAvailable(const std::string &program)
{
    if (program.empty())
        return false;
    // `command -v` understands both bare names (PATH lookup) and
    // absolute paths; redirect everything so probes stay silent.
    return runShellCommand("command -v '" + program +
                           "' > /dev/null 2>&1")
        .ok();
}

bool
compileSharedObject(const SharedObjectJob &job, std::string *errText)
{
    std::string errPath = job.outputPath + ".err";
    std::ostringstream cmd;
    cmd << job.compiler << " " << job.flags << " -shared -fPIC -o "
        << job.outputPath << " " << job.sourcePath << " 2> "
        << errPath;
    CommandResult result = runShellCommand(cmd.str());
    if (!result.ok()) {
        if (errText) {
            std::ifstream err(errPath);
            std::ostringstream text;
            text << err.rdbuf();
            std::string full = text.str();
            // Keep the tail: with `-Werror`-style cascades the last
            // lines carry the actual failure.
            constexpr std::size_t kMaxErr = 512;
            if (full.size() > kMaxErr)
                full = "..." + full.substr(full.size() - kMaxErr);
            *errText = "exit " + std::to_string(result.exitCode) +
                       (full.empty() ? "" : ": " + full);
        }
        std::remove(errPath.c_str());
        std::remove(job.outputPath.c_str());
        return false;
    }
    std::remove(errPath.c_str());
    return true;
}

} // namespace amos
