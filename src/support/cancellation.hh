/**
 * @file
 * Cooperative cancellation: a token that long-running work (the
 * mapping tuner, a queued serve request) polls at safe points.
 *
 * A token is cancelled either explicitly (cancel()) or implicitly by
 * an attached deadline. checkpoint() turns a cancelled token into a
 * CancelledError, which unwinds out of the tuner's generation loop
 * and is mapped to a typed serve error by the caller.
 *
 * Deadlines only ever move *later*: extendDeadline() takes the max,
 * so a coalesced request joining an in-flight exploration can keep
 * it alive past the original requester's deadline but can never
 * shorten someone else's budget.
 */

#ifndef AMOS_SUPPORT_CANCELLATION_HH
#define AMOS_SUPPORT_CANCELLATION_HH

#include <atomic>
#include <chrono>
#include <cstdint>
#include <limits>
#include <stdexcept>
#include <string>

namespace amos {

/** Exception thrown by CancelToken::checkpoint(). */
class CancelledError : public std::runtime_error
{
  public:
    explicit CancelledError(const std::string &msg)
        : std::runtime_error(msg)
    {}
};

/**
 * Thread-safe cancellation flag with an optional monotonic deadline.
 * All members are lock-free; a token may be polled from many worker
 * threads while another thread cancels or extends the deadline.
 */
class CancelToken
{
  public:
    using Clock = std::chrono::steady_clock;

    /** Request cancellation (idempotent). */
    void
    cancel()
    {
        _cancelled.store(true, std::memory_order_relaxed);
    }

    /** Replace the deadline (kNoDeadline clears it). */
    void
    setDeadline(Clock::time_point tp)
    {
        _deadlineNs.store(tp.time_since_epoch().count(),
                          std::memory_order_relaxed);
    }

    /**
     * Move the deadline later (to the max of the current and given
     * values); passing Clock::time_point::max() clears it entirely.
     */
    void
    extendDeadline(Clock::time_point tp)
    {
        std::int64_t want = tp.time_since_epoch().count();
        std::int64_t cur =
            _deadlineNs.load(std::memory_order_relaxed);
        while (cur < want &&
               !_deadlineNs.compare_exchange_weak(
                   cur, want, std::memory_order_relaxed)) {
        }
    }

    bool
    hasDeadline() const
    {
        return _deadlineNs.load(std::memory_order_relaxed) !=
               kNoDeadline;
    }

    /** The deadline (time_point::max() when none is set). */
    Clock::time_point
    deadline() const
    {
        return Clock::time_point(Clock::duration(
            _deadlineNs.load(std::memory_order_relaxed)));
    }

    /** True once the deadline (if any) has passed. */
    bool
    deadlineExpired() const
    {
        std::int64_t ns =
            _deadlineNs.load(std::memory_order_relaxed);
        return ns != kNoDeadline &&
               Clock::now().time_since_epoch().count() >= ns;
    }

    /** True when cancelled explicitly or via the deadline. */
    bool
    cancelled() const
    {
        return _cancelled.load(std::memory_order_relaxed) ||
               deadlineExpired();
    }

    /** Throw CancelledError when cancelled (the polling point). */
    void
    checkpoint(const char *what = "operation") const
    {
        if (!cancelled())
            return;
        throw CancelledError(
            std::string(what) +
            (deadlineExpired() ? ": deadline exceeded"
                               : ": cancelled"));
    }

  private:
    static constexpr std::int64_t kNoDeadline =
        std::numeric_limits<std::int64_t>::max();

    std::atomic<bool> _cancelled{false};
    std::atomic<std::int64_t> _deadlineNs{kNoDeadline};
};

} // namespace amos

#endif // AMOS_SUPPORT_CANCELLATION_HH
