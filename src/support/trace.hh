/**
 * @file
 * Structured tracing: scoped spans collected into per-thread buffers
 * and exported as Chrome trace-event JSON (loadable in Perfetto or
 * chrome://tracing).
 *
 * Two recording modes, combinable:
 *
 *  - Global: Tracer::global().setEnabled(true) records every span in
 *    the process (the `--trace-out` flag of amos_cli/amos_served).
 *
 *  - Per-request: a TraceContext installed on a thread tags spans
 *    with a trace id and records them even while global tracing is
 *    off. The serve layer uses this to attach a span tree to a
 *    single response without tracing the whole server; parallelFor
 *    propagates the context onto its worker threads.
 *
 * When neither mode is active, constructing a TraceSpan costs one
 * relaxed atomic load plus one thread-local read — cheap enough to
 * leave instrumentation in every hot path (see docs/observability.md
 * for the measured overhead).
 *
 * Thread safety: spans are appended under a per-thread mutex that is
 * uncontended except while an exporter snapshots the buffers, so the
 * tracer is safe (and TSan-clean) under concurrent tuning threads.
 */

#ifndef AMOS_SUPPORT_TRACE_HH
#define AMOS_SUPPORT_TRACE_HH

#include <atomic>
#include <chrono>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <utility>
#include <vector>

#include "support/json.hh"

namespace amos {

/** One completed span, as stored in a thread buffer. */
struct SpanRecord
{
    /// Span name ("mapping.enumerate", ...); see docs/observability.md
    /// for the taxonomy.
    std::string name;
    /// Coarse subsystem category ("mapping", "explore", "sim", ...).
    std::string category;
    /// Per-request trace id (empty when recorded by global tracing
    /// outside any TraceContext).
    std::string traceId;
    /// Key/value annotations, in insertion order.
    std::vector<std::pair<std::string, std::string>> args;

    /// Start offset from the tracer epoch, microseconds.
    double startUs = 0.0;
    /// Duration, microseconds.
    double durUs = 0.0;
    /// Dense per-process thread index (stable per thread).
    std::uint32_t tid = 0;
};

/** Collects spans from all threads; exports Chrome trace JSON. */
class Tracer
{
  public:
    Tracer();

    Tracer(const Tracer &) = delete;
    Tracer &operator=(const Tracer &) = delete;

    /** Turn global (record-everything) tracing on or off. */
    void setEnabled(bool enabled);
    bool
    enabled() const
    {
        return _enabled.load(std::memory_order_relaxed);
    }

    /** Drop every recorded span (buffers stay registered). */
    void clear();

    /** Snapshot of all recorded spans across all threads. */
    std::vector<SpanRecord> collect() const;

    /** Number of spans currently recorded. */
    std::size_t spanCount() const;

    /**
     * Chrome trace-event JSON: {"traceEvents":[...],
     * "displayTimeUnit":"ms"}, one complete ("ph":"X") event per
     * span. Load in Perfetto (ui.perfetto.dev) or chrome://tracing.
     */
    Json toChromeJson() const;

    /** Write toChromeJson() to a file (fatal on I/O failure). */
    void writeFile(const std::string &path) const;

    /**
     * Nested span tree of one trace id: spans on the same thread
     * nest by time containment, cross-thread spans attach to the
     * innermost enclosing-in-time span of the spawning structure or
     * to the root. Returns a JSON object {"trace_id":..,
     * "spans":[{name,cat,start_us,dur_us,args,children:[...]}]}.
     */
    Json spanTreeFor(const std::string &traceId) const;

    /**
     * Erase every span tagged with the given trace id; returns the
     * number erased. The serve layer calls this after attaching a
     * span tree to a response so per-request tracing cannot grow the
     * buffers without bound.
     */
    std::size_t releaseTrace(const std::string &traceId);

    /**
     * Per-thread buffer cap: once a thread holds this many spans,
     * further records on it are dropped (counted in droppedSpans()
     * and the global `trace.dropped_spans` metric) instead of
     * growing without bound — a long-lived `--trace-out` server
     * stays at bounded memory. Per-request traces are released
     * after each response, so they never hit the cap in practice.
     */
    void setSpanCapPerThread(std::size_t cap);
    std::size_t spanCapPerThread() const;

    /** Spans dropped by the per-thread cap since process start. */
    std::uint64_t droppedSpans() const;

    /** The process-wide tracer every TraceSpan records into. */
    static Tracer &global();

    /// @name Internals shared with TraceSpan (not for direct use).
    /// @{
    using Clock = std::chrono::steady_clock;
    double
    sinceEpochUs(Clock::time_point tp) const
    {
        return std::chrono::duration<double, std::micro>(tp - _epoch)
            .count();
    }
    void record(SpanRecord record);
    /// @}

  private:
    struct ThreadBuffer
    {
        mutable std::mutex mutex;
        std::vector<SpanRecord> spans;
        std::uint32_t tid = 0;
    };

    ThreadBuffer &threadBuffer();

    std::atomic<bool> _enabled{false};
    std::atomic<std::size_t> _spanCap;
    std::atomic<std::uint64_t> _dropped{0};
    /// Global `trace.dropped_spans` counter, resolved once in the
    /// constructor so the drop path never takes the registry lock.
    class MetricCounter *_dropCounter;
    Clock::time_point _epoch;

    mutable std::mutex _registryMutex;
    std::vector<std::shared_ptr<ThreadBuffer>> _buffers;
    std::uint32_t _nextTid = 0;
};

/**
 * RAII per-request trace context: while alive, spans opened on this
 * thread (and on parallelFor workers it fans out to) carry the trace
 * id and are recorded even when global tracing is off. Contexts nest;
 * the innermost wins.
 */
class TraceContext
{
  public:
    explicit TraceContext(std::string traceId);
    ~TraceContext();

    TraceContext(const TraceContext &) = delete;
    TraceContext &operator=(const TraceContext &) = delete;

    /** The active trace id on this thread (empty when none). */
    static const std::string &currentId();

  private:
    std::string _previous;
};

/**
 * RAII scoped span. Construct at the top of the region to measure;
 * the span is recorded (if tracing is active) when it destructs.
 *
 *   TraceSpan span("mapping.enumerate", "mapping");
 *   span.arg("intrinsic", intr.name());
 */
class TraceSpan
{
  public:
    explicit TraceSpan(const char *name,
                       const char *category = "amos");
    ~TraceSpan();

    TraceSpan(const TraceSpan &) = delete;
    TraceSpan &operator=(const TraceSpan &) = delete;

    /** Attach an annotation (no-op when the span is inactive). */
    void arg(const char *key, std::string value);
    void
    arg(const char *key, std::int64_t value)
    {
        arg(key, std::to_string(value));
    }

    /** True when this span will be recorded (tracer or flight). */
    bool active() const { return _active || _flight; }

  private:
    /// Recording into the Tracer (global tracing or TraceContext).
    bool _active;
    /// Recording into the flight-recorder ring (a FlightScope is
    /// installed and the recorder is enabled).
    bool _flight;
    const char *_name;
    const char *_category;
    std::uint64_t _flightSeq = 0;
    Tracer::Clock::time_point _start;
    std::vector<std::pair<std::string, std::string>> _args;
    /// Inline args for the flight record ("k=v k=v", truncated).
    char _flightArgs[56];
    std::size_t _flightArgsLen = 0;
};

} // namespace amos

#endif // AMOS_SUPPORT_TRACE_HH
