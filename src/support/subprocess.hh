/**
 * @file
 * Minimal subprocess helpers for the JIT tier: run a shell command,
 * probe whether a program can be invoked, and drive the system C
 * compiler to produce a shared object. Kept deliberately small — the
 * only consumer is the kernel JIT, which needs "compile this file or
 * tell me why not", not a general process API.
 */

#ifndef AMOS_SUPPORT_SUBPROCESS_HH
#define AMOS_SUPPORT_SUBPROCESS_HH

#include <string>

namespace amos {

/** Outcome of one shell command. */
struct CommandResult
{
    /// True when the shell itself could run the command line (the
    /// command may still have exited nonzero).
    bool ran = false;
    int exitCode = -1;

    bool ok() const { return ran && exitCode == 0; }
};

/** Run a command line through the shell; never throws. */
CommandResult runShellCommand(const std::string &commandLine);

/**
 * True when `program` resolves to something executable (`command -v`
 * through the shell). Used to probe the JIT compiler once before
 * paying for a real compile attempt.
 */
bool programAvailable(const std::string &program);

/** One shared-object compilation request. */
struct SharedObjectJob
{
    std::string compiler;   ///< e.g. "cc" or "/usr/bin/gcc"
    std::string flags;      ///< e.g. "-O3 -march=native"
    std::string sourcePath; ///< input .c translation unit
    std::string outputPath; ///< output .so path
};

/**
 * Compile one C source into a shared object
 * (`<compiler> <flags> -shared -fPIC -o <out> <src>`). On failure
 * returns false and fills `errText` with the tail of the compiler's
 * stderr so fallback reasons stay diagnosable.
 */
bool compileSharedObject(const SharedObjectJob &job,
                         std::string *errText = nullptr);

} // namespace amos

#endif // AMOS_SUPPORT_SUBPROCESS_HH
