/**
 * @file
 * Always-on flight recorder: fixed-capacity per-thread ring buffers
 * of compact span records, fed by the existing TraceSpan
 * instrumentation points (no new call sites anywhere in the
 * pipeline).
 *
 * The recorder answers the question full tracing cannot: "what was
 * this request doing?" for requests nobody thought to trace. The
 * serve layer opens a FlightScope per request (a numeric sequence
 * number, propagated across parallelFor like a TraceContext); every
 * TraceSpan closing under the scope appends one ~128-byte record to
 * the current thread's ring. Rings overwrite their oldest records
 * when full, so memory is bounded by `threads x capacity` forever —
 * the tail-based retention in src/serve decides *after* a request
 * finished whether to harvest its records into a postmortem.
 *
 * Cost model: when no scope is active a TraceSpan pays one
 * thread-local read extra. Under a scope, closing a span is one
 * uncontended per-thread mutex plus a small fixed-size copy — no
 * allocation, no string construction (names/categories are string
 * literals and stored as pointers, args are snprintf'd into an
 * inline buffer). bench_trace_overhead gates the enabled-recorder
 * overhead at < 5%.
 *
 * Crash path: crashDump(fd) walks the rings without taking locks
 * and writes one line per record using only async-signal-safe
 * primitives (write(2), manual integer formatting), so a
 * SIGSEGV/SIGABRT handler can preserve the last moments of every
 * thread.
 */

#ifndef AMOS_SUPPORT_FLIGHT_RECORDER_HH
#define AMOS_SUPPORT_FLIGHT_RECORDER_HH

#include <atomic>
#include <chrono>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "support/json.hh"

namespace amos {

/** One recorded span, compact enough to live in a preallocated ring. */
struct FlightRecord
{
    /// Span name/category — string literals owned by the program
    /// image (TraceSpan takes `const char *`), never freed.
    const char *name = nullptr;
    const char *category = nullptr;
    /// Request sequence number the span was recorded under (from
    /// FlightRecorder::beginRequest); 0 = no request scope.
    std::uint64_t seq = 0;
    /// Start offset from the recorder epoch / duration, microseconds.
    double startUs = 0.0;
    double durUs = 0.0;
    /// Dense per-process thread index (stable per thread).
    std::uint32_t tid = 0;
    /// Inline "k=v k=v" annotations, truncated, NUL-terminated.
    char args[56] = {0};
};

/**
 * Process-wide recorder of FlightRecords. Enabled by default —
 * "always on" is the point — but can be toggled for A/B overhead
 * measurement (bench_trace_overhead) and tests.
 */
class FlightRecorder
{
  public:
    FlightRecorder();

    FlightRecorder(const FlightRecorder &) = delete;
    FlightRecorder &operator=(const FlightRecorder &) = delete;

    bool
    enabled() const
    {
        return _enabled.load(std::memory_order_relaxed);
    }
    void setEnabled(bool enabled);

    /**
     * Allocate a request sequence number (monotonic, never 0).
     * Install it on the serving thread with a FlightScope so the
     * request's spans are attributed to it.
     */
    std::uint64_t beginRequest();

    /** The active sequence number on this thread (0 when none). */
    static std::uint64_t currentSeq();

    /** Append one record to the calling thread's ring. */
    void push(const FlightRecord &record);

    /**
     * Snapshot every record of one request across all rings,
     * sorted by start time (parents before children).
     */
    std::vector<FlightRecord> harvest(std::uint64_t seq) const;

    /**
     * Span tree of one request, nested by time containment —
     * the same shape Tracer::spanTreeFor produces, built from the
     * rings instead of the (possibly disabled) tracer:
     * {"flight_seq":N,"spans":[{name,cat,start_us,dur_us,args,
     * children:[...]}]}.
     */
    Json spanTreeFor(std::uint64_t seq) const;

    /**
     * Everything currently held in the rings (all requests mixed),
     * as a JSON array sorted by start time. The `flightdump` verb
     * and `--flight-dump` write this to disk.
     */
    Json dumpJson() const;

    /** Records currently resident across all rings. */
    std::size_t recordCount() const;

    /** Total records ever overwritten by ring wrap-around. */
    std::uint64_t overwrittenCount() const;

    /** Drop every resident record (rings stay registered). */
    void clear();

    /**
     * Async-signal-safe dump of every ring to a file descriptor:
     * one `flight tid=<t> seq=<s> start_us=<..> dur_us=<..>
     * <name> [args]` line per record. Walks the rings WITHOUT
     * locking — a crashed thread may hold a ring mutex — so a
     * record being written concurrently can read torn; acceptable
     * for a best-effort postmortem. Only write(2) and stack
     * formatting, callable from SIGSEGV/SIGABRT handlers.
     */
    void crashDump(int fd) const noexcept;

    /**
     * Per-thread ring capacity for subsequently *registered*
     * threads (existing rings keep their size). Tests shrink it to
     * exercise wrap-around without millions of spans.
     */
    void setCapacityPerThread(std::size_t capacity);
    std::size_t capacityPerThread() const;

    /** The process-wide recorder every TraceSpan records into. */
    static FlightRecorder &global();

  private:
    friend class FlightScope;

    struct Ring
    {
        mutable std::mutex mutex;
        std::vector<FlightRecord> slots; // preallocated, fixed size
        std::size_t next = 0;            // next write position
        std::size_t used = 0;            // live records (<= size)
        std::uint32_t tid = 0;
    };

    Ring &threadRing();
    template <typename Fn> void forEachRecord(Fn &&fn) const;

    std::atomic<bool> _enabled{true};
    std::atomic<std::uint64_t> _nextSeq{1};
    std::atomic<std::uint64_t> _overwritten{0};
    std::atomic<std::size_t> _capacity;

    mutable std::mutex _registryMutex;
    std::vector<std::shared_ptr<Ring>> _rings;
    std::uint32_t _nextTid = 0;

    std::chrono::steady_clock::time_point _epoch;

  public:
    /// @name Internals shared with TraceSpan (not for direct use).
    /// @{
    double
    sinceEpochUs(std::chrono::steady_clock::time_point tp) const
    {
        return std::chrono::duration<double, std::micro>(tp - _epoch)
            .count();
    }
    /// @}
};

/**
 * RAII request scope: while alive, spans closing on this thread
 * (and on parallelFor workers the thread fans out to) are recorded
 * into the flight rings under the given sequence number. Scopes
 * nest; the innermost wins.
 */
class FlightScope
{
  public:
    explicit FlightScope(std::uint64_t seq);
    ~FlightScope();

    FlightScope(const FlightScope &) = delete;
    FlightScope &operator=(const FlightScope &) = delete;

  private:
    std::uint64_t _previous;
};

} // namespace amos

#endif // AMOS_SUPPORT_FLIGHT_RECORDER_HH
