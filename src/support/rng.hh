/**
 * @file
 * Deterministic seeded random-number generator wrapper.
 *
 * Everything in this repository must be reproducible run-to-run, so
 * all randomised components (tuner mutation, schedule sampling) draw
 * from an explicitly seeded Rng instance rather than global state.
 */

#ifndef AMOS_SUPPORT_RNG_HH
#define AMOS_SUPPORT_RNG_HH

#include <algorithm>
#include <cstdint>
#include <random>
#include <vector>

#include "logging.hh"

namespace amos {

/**
 * Mix a base seed with a stream id and a step counter into one
 * well-scrambled 64-bit seed (iterated splitmix64 finalisers).
 *
 * The parallel tuner derives an independent Rng per candidate from
 * (options.seed, candidate index, generation): every random draw
 * then depends only on *which* candidate is being produced, never on
 * the order threads reach it, which is what makes the search
 * trajectory bit-identical for every thread count.
 */
inline std::uint64_t
mixSeed(std::uint64_t seed, std::uint64_t stream, std::uint64_t step)
{
    auto scramble = [](std::uint64_t z) {
        z += 0x9e3779b97f4a7c15ULL;
        z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
        z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
        return z ^ (z >> 31);
    };
    return scramble(scramble(scramble(seed) ^ stream) ^ step);
}

/** Seeded mt19937-based generator with convenience draws. */
class Rng
{
  public:
    explicit Rng(std::uint64_t seed = 0x5EED) : _engine(seed) {}

    /** Uniform integer in [lo, hi] inclusive. */
    std::int64_t
    uniformInt(std::int64_t lo, std::int64_t hi)
    {
        require(lo <= hi, "Rng::uniformInt: empty range [", lo, ",",
                hi, "]");
        std::uniform_int_distribution<std::int64_t> dist(lo, hi);
        return dist(_engine);
    }

    /** Uniform real in [0, 1). */
    double
    uniformReal()
    {
        std::uniform_real_distribution<double> dist(0.0, 1.0);
        return dist(_engine);
    }

    /** Bernoulli draw with probability p of true. */
    bool
    flip(double p)
    {
        return uniformReal() < p;
    }

    /** Pick a uniformly random element of a non-empty vector. */
    template <typename T>
    const T &
    choice(const std::vector<T> &items)
    {
        require(!items.empty(), "Rng::choice on empty vector");
        auto idx = uniformInt(0,
            static_cast<std::int64_t>(items.size()) - 1);
        return items[static_cast<std::size_t>(idx)];
    }

    /** In-place Fisher-Yates shuffle. */
    template <typename T>
    void
    shuffle(std::vector<T> &items)
    {
        std::shuffle(items.begin(), items.end(), _engine);
    }

    std::mt19937_64 &engine() { return _engine; }

  private:
    std::mt19937_64 _engine;
};

} // namespace amos

#endif // AMOS_SUPPORT_RNG_HH
