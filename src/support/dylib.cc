#include "dylib.hh"

#include <dlfcn.h>

namespace amos {

namespace {

std::string
lastDlError()
{
    const char *err = dlerror();
    return err ? std::string(err) : std::string("unknown dl error");
}

} // namespace

DynamicLibrary::~DynamicLibrary()
{
    close();
}

DynamicLibrary::DynamicLibrary(DynamicLibrary &&other) noexcept
    : _handle(other._handle), _path(std::move(other._path))
{
    other._handle = nullptr;
    other._path.clear();
}

DynamicLibrary &
DynamicLibrary::operator=(DynamicLibrary &&other) noexcept
{
    if (this != &other) {
        close();
        _handle = other._handle;
        _path = std::move(other._path);
        other._handle = nullptr;
        other._path.clear();
    }
    return *this;
}

bool
DynamicLibrary::open(const std::string &path, std::string *errText)
{
    close();
    dlerror(); // clear any stale error
    _handle = dlopen(path.c_str(), RTLD_NOW | RTLD_LOCAL);
    if (!_handle) {
        if (errText)
            *errText = lastDlError();
        return false;
    }
    _path = path;
    return true;
}

void *
DynamicLibrary::symbol(const std::string &name,
                       std::string *errText) const
{
    if (!_handle) {
        if (errText)
            *errText = "library is not loaded";
        return nullptr;
    }
    dlerror();
    void *sym = dlsym(_handle, name.c_str());
    if (!sym && errText)
        *errText = lastDlError();
    return sym;
}

void
DynamicLibrary::close()
{
    if (_handle) {
        dlclose(_handle);
        _handle = nullptr;
    }
    _path.clear();
}

} // namespace amos
