/**
 * @file
 * Dense binary (0/1) matrix with the boolean matrix product used by
 * the AMOS mapping-validation algorithm (Algorithm 1 of the paper).
 *
 * The paper writes the product as a star operator: (A ★ B)[i][j] is
 * the logical OR over k of A[i][k] AND B[k][j].
 */

#ifndef AMOS_SUPPORT_BIT_MATRIX_HH
#define AMOS_SUPPORT_BIT_MATRIX_HH

#include <cstddef>
#include <string>
#include <vector>

namespace amos {

/**
 * A small dense boolean matrix.
 *
 * Sizes in AMOS are tiny (tensors x iterations, typically < 16 each),
 * so a vector<uint8_t> representation is simple and fast enough.
 */
class BitMatrix
{
  public:
    BitMatrix() = default;

    /** Create a rows x cols matrix of zeros. */
    BitMatrix(std::size_t rows, std::size_t cols);

    /**
     * Create from a row-major initializer, e.g.
     * BitMatrix::fromRows({{1,0,1},{0,1,0}}).
     */
    static BitMatrix fromRows(
        const std::vector<std::vector<int>> &rows);

    /** Identity matrix of size n. */
    static BitMatrix identity(std::size_t n);

    std::size_t rows() const { return _rows; }
    std::size_t cols() const { return _cols; }

    /** Read entry (r, c). */
    bool at(std::size_t r, std::size_t c) const;

    /** Write entry (r, c). */
    void set(std::size_t r, std::size_t c, bool value);

    /** Boolean matrix product (the paper's star operator). */
    BitMatrix star(const BitMatrix &other) const;

    /** Matrix transpose. */
    BitMatrix transposed() const;

    /** Extract a column as a bit vector. */
    std::vector<bool> column(std::size_t c) const;

    /** Extract a row as a bit vector. */
    std::vector<bool> row(std::size_t r) const;

    /** True iff every entry of column c is zero. */
    bool columnIsZero(std::size_t c) const;

    /** Number of set bits in the whole matrix. */
    std::size_t popcount() const;

    bool operator==(const BitMatrix &other) const;
    bool operator!=(const BitMatrix &other) const
    {
        return !(*this == other);
    }

    /** Render as a multi-line 0/1 grid for diagnostics. */
    std::string toString() const;

  private:
    std::size_t _rows = 0;
    std::size_t _cols = 0;
    std::vector<std::uint8_t> _data;

    std::size_t index(std::size_t r, std::size_t c) const
    {
        return r * _cols + c;
    }
};

} // namespace amos

#endif // AMOS_SUPPORT_BIT_MATRIX_HH
