/**
 * @file
 * RAII wrapper over dlopen/dlsym/dlclose. The JIT tier keeps one of
 * these per cached kernel: the handle owns the mapped shared object,
 * so unloading is tied to cache eviction instead of scattered
 * dlclose calls.
 */

#ifndef AMOS_SUPPORT_DYLIB_HH
#define AMOS_SUPPORT_DYLIB_HH

#include <string>

namespace amos {

/** A loaded shared object; movable, closes on destruction. */
class DynamicLibrary
{
  public:
    DynamicLibrary() = default;
    ~DynamicLibrary();

    DynamicLibrary(DynamicLibrary &&other) noexcept;
    DynamicLibrary &operator=(DynamicLibrary &&other) noexcept;
    DynamicLibrary(const DynamicLibrary &) = delete;
    DynamicLibrary &operator=(const DynamicLibrary &) = delete;

    /**
     * dlopen the file (RTLD_NOW | RTLD_LOCAL). Returns false and
     * fills `errText` with the dlerror message on failure — a
     * corrupt or truncated .so is an error string, never a crash.
     */
    bool open(const std::string &path, std::string *errText = nullptr);

    /** Resolve a symbol; nullptr (and errText) when absent. */
    void *symbol(const std::string &name,
                 std::string *errText = nullptr) const;

    bool valid() const { return _handle != nullptr; }
    const std::string &path() const { return _path; }

    /** Explicitly unload (also done by the destructor). */
    void close();

  private:
    void *_handle = nullptr;
    std::string _path;
};

} // namespace amos

#endif // AMOS_SUPPORT_DYLIB_HH
