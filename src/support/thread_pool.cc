#include "thread_pool.hh"

#include <algorithm>
#include <atomic>
#include <optional>

#include "flight_recorder.hh"
#include "logging.hh"
#include "trace.hh"

namespace amos {

namespace {

thread_local bool tls_in_parallel = false;

/** RAII flag marking the current thread as inside a parallel body. */
struct ParallelRegionGuard
{
    bool previous;

    ParallelRegionGuard() : previous(tls_in_parallel)
    {
        tls_in_parallel = true;
    }
    ~ParallelRegionGuard() { tls_in_parallel = previous; }
};

} // namespace

bool
insideParallelRegion()
{
    return tls_in_parallel;
}

ThreadPool::ThreadPool(std::size_t numThreads)
{
    if (numThreads == 0)
        numThreads = resolveThreads(0);
    _workers.reserve(numThreads);
    for (std::size_t i = 0; i < numThreads; ++i)
        _workers.emplace_back([this] { workerLoop(); });
}

ThreadPool::~ThreadPool()
{
    {
        std::lock_guard<std::mutex> lock(_mutex);
        _stopping = true;
    }
    _cv.notify_all();
    for (auto &worker : _workers)
        worker.join();
}

std::size_t
ThreadPool::queueDepth() const
{
    std::lock_guard<std::mutex> lock(_mutex);
    return _queue.size();
}

std::future<void>
ThreadPool::submit(std::function<void()> task)
{
    require(static_cast<bool>(task),
            "ThreadPool::submit: empty task");
    std::packaged_task<void()> packaged(std::move(task));
    auto future = packaged.get_future();
    {
        std::lock_guard<std::mutex> lock(_mutex);
        require(!_stopping, "ThreadPool::submit after shutdown");
        _queue.push_back(std::move(packaged));
    }
    _cv.notify_one();
    return future;
}

void
ThreadPool::workerLoop()
{
    // Pool workers never fan out again: a parallelFor reached from a
    // worker runs inline, so a pool saturated with drivers can never
    // deadlock waiting on itself.
    tls_in_parallel = true;
    for (;;) {
        std::packaged_task<void()> task;
        {
            std::unique_lock<std::mutex> lock(_mutex);
            _cv.wait(lock,
                     [this] { return _stopping || !_queue.empty(); });
            if (_queue.empty())
                return; // stopping and drained
            task = std::move(_queue.front());
            _queue.pop_front();
        }
        task();
    }
}

ThreadPool &
ThreadPool::global()
{
    static ThreadPool pool(resolveThreads(0));
    return pool;
}

std::size_t
ThreadPool::resolveThreads(int requested)
{
    if (requested > 0)
        return static_cast<std::size_t>(requested);
    unsigned hc = std::thread::hardware_concurrency();
    return hc > 0 ? hc : 1;
}

void
parallelFor(std::size_t n,
            const std::function<void(std::size_t)> &body,
            int numThreads)
{
    if (n == 0)
        return;
    std::size_t want =
        std::min(ThreadPool::resolveThreads(numThreads), n);
    if (want <= 1 || insideParallelRegion()) {
        for (std::size_t i = 0; i < n; ++i)
            body(i);
        return;
    }

    std::atomic<std::size_t> next{0};
    std::atomic<bool> failed{false};
    std::mutex error_mutex;
    std::exception_ptr error;

    // Fan the caller's per-request trace context and flight scope
    // out with the work: spans opened inside bodies on pool workers
    // stay attributed to the request that forked them.
    std::string trace_id = TraceContext::currentId();
    std::uint64_t flight_seq = FlightRecorder::currentSeq();

    auto drive = [&]() {
        ParallelRegionGuard guard;
        std::optional<TraceContext> trace_ctx;
        if (!trace_id.empty())
            trace_ctx.emplace(trace_id);
        std::optional<FlightScope> flight_scope;
        if (flight_seq != 0)
            flight_scope.emplace(flight_seq);
        while (!failed.load(std::memory_order_relaxed)) {
            std::size_t i =
                next.fetch_add(1, std::memory_order_relaxed);
            if (i >= n)
                break;
            try {
                body(i);
            } catch (...) {
                std::lock_guard<std::mutex> lock(error_mutex);
                if (!error)
                    error = std::current_exception();
                failed.store(true, std::memory_order_relaxed);
            }
        }
    };

    // Excess helpers beyond the pool's worker count just queue and
    // find the index range exhausted; the caller thread drives too,
    // so the loop completes even on a fully busy pool.
    std::vector<std::future<void>> helpers;
    helpers.reserve(want - 1);
    for (std::size_t t = 1; t < want; ++t)
        helpers.push_back(ThreadPool::global().submit(drive));
    drive();
    for (auto &helper : helpers)
        helper.get();
    if (error)
        std::rethrow_exception(error);
}

} // namespace amos
