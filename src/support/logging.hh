/**
 * @file
 * Error-reporting and status-message helpers.
 *
 * Follows the gem5 convention: panic() is for internal invariant
 * violations (framework bugs), fatal() is for user errors (bad
 * configurations, invalid arguments), warn()/inform() report
 * conditions without stopping the program.
 */

#ifndef AMOS_SUPPORT_LOGGING_HH
#define AMOS_SUPPORT_LOGGING_HH

#include <cstdio>
#include <cstdlib>
#include <sstream>
#include <stdexcept>
#include <string>

namespace amos {

/** Exception thrown by fatal() for user-caused errors. */
class FatalError : public std::runtime_error
{
  public:
    explicit FatalError(const std::string &msg)
        : std::runtime_error(msg)
    {}
};

/** Exception thrown by panic() for internal framework bugs. */
class PanicError : public std::logic_error
{
  public:
    explicit PanicError(const std::string &msg)
        : std::logic_error(msg)
    {}
};

namespace detail {

/** Concatenate a pack of stream-printable values into one string. */
template <typename... Args>
std::string
concat(Args &&...args)
{
    std::ostringstream oss;
    (oss << ... << std::forward<Args>(args));
    return oss.str();
}

} // namespace detail

/**
 * Report an unrecoverable user error (bad input, impossible config).
 *
 * Throws FatalError so that library users (and tests) can catch it;
 * command-line tools let it propagate to main().
 */
template <typename... Args>
[[noreturn]] void
fatal(Args &&...args)
{
    throw FatalError(detail::concat("fatal: ",
                                    std::forward<Args>(args)...));
}

/**
 * Report an internal invariant violation (a framework bug).
 */
template <typename... Args>
[[noreturn]] void
panic(Args &&...args)
{
    throw PanicError(detail::concat("panic: ",
                                    std::forward<Args>(args)...));
}

/** Emit a non-fatal warning to stderr. */
template <typename... Args>
void
warn(Args &&...args)
{
    std::string msg = detail::concat(std::forward<Args>(args)...);
    std::fprintf(stderr, "warn: %s\n", msg.c_str());
}

/** Emit an informational status message to stderr. */
template <typename... Args>
void
inform(Args &&...args)
{
    std::string msg = detail::concat(std::forward<Args>(args)...);
    std::fprintf(stderr, "info: %s\n", msg.c_str());
}

/**
 * Assert a framework invariant with a formatted message.
 *
 * Unlike assert(), stays active in release builds: mapping validity
 * and address arithmetic must never silently go wrong.
 */
template <typename... Args>
void
require(bool cond, Args &&...args)
{
    if (!cond)
        panic(std::forward<Args>(args)...);
}

/** Validate a user-supplied condition, raising fatal() on failure. */
template <typename... Args>
void
expect(bool cond, Args &&...args)
{
    if (!cond)
        fatal(std::forward<Args>(args)...);
}

} // namespace amos

#endif // AMOS_SUPPORT_LOGGING_HH
