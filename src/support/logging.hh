/**
 * @file
 * Error-reporting and leveled logging helpers.
 *
 * Follows the gem5 convention: panic() is for internal invariant
 * violations (framework bugs), fatal() is for user errors (bad
 * configurations, invalid arguments), warn()/inform() report
 * conditions without stopping the program.
 *
 * Leveled logging: AMOS_LOG(Debug|Info|Warn|Error) streams one
 * timestamped line to stderr when the level passes the threshold
 * from the AMOS_LOG environment variable (debug|info|warn|error,
 * default info). A thread-local trace id — installed with
 * LogTraceScope around a request — is appended to every line, so
 * server logs correlate with exploration traces:
 *
 *   AMOS_LOG(Info) << "compiled " << key << " in " << ms << " ms";
 *   // 2026-08-06T12:31:55.104Z info: compiled gemm/... [trace=abc]
 *
 * The statement below the macro is skipped entirely (operands not
 * evaluated) when the level is filtered out.
 */

#ifndef AMOS_SUPPORT_LOGGING_HH
#define AMOS_SUPPORT_LOGGING_HH

#include <cstdio>
#include <cstdlib>
#include <sstream>
#include <stdexcept>
#include <string>

namespace amos {

/** Exception thrown by fatal() for user-caused errors. */
class FatalError : public std::runtime_error
{
  public:
    explicit FatalError(const std::string &msg)
        : std::runtime_error(msg)
    {}
};

/** Exception thrown by panic() for internal framework bugs. */
class PanicError : public std::logic_error
{
  public:
    explicit PanicError(const std::string &msg)
        : std::logic_error(msg)
    {}
};

namespace detail {

/** Concatenate a pack of stream-printable values into one string. */
template <typename... Args>
std::string
concat(Args &&...args)
{
    std::ostringstream oss;
    (oss << ... << std::forward<Args>(args));
    return oss.str();
}

} // namespace detail

/**
 * Report an unrecoverable user error (bad input, impossible config).
 *
 * Throws FatalError so that library users (and tests) can catch it;
 * command-line tools let it propagate to main().
 */
template <typename... Args>
[[noreturn]] void
fatal(Args &&...args)
{
    throw FatalError(detail::concat("fatal: ",
                                    std::forward<Args>(args)...));
}

/**
 * Report an internal invariant violation (a framework bug).
 */
template <typename... Args>
[[noreturn]] void
panic(Args &&...args)
{
    throw PanicError(detail::concat("panic: ",
                                    std::forward<Args>(args)...));
}

/** Severity of one log line, ordered for threshold comparison. */
enum class LogLevel
{
    Debug = 0,
    Info = 1,
    Warn = 2,
    Error = 3,
};

/** Wire name of a level ("debug" | "info" | "warn" | "error"). */
const char *logLevelName(LogLevel level);

/**
 * The process's log threshold: parsed once from the AMOS_LOG
 * environment variable (debug|info|warn|error, case-insensitive);
 * unset or unrecognised values mean Info.
 */
LogLevel logThreshold();

/** True when lines of this level pass the threshold. */
bool logEnabled(LogLevel level);

/**
 * Emit one timestamped line to stderr:
 * `<ISO-8601 UTC> <level>: <message>[ [trace=<id>]]`.
 * Emits unconditionally — callers filter with logEnabled() (the
 * AMOS_LOG macro does this for you).
 */
void logMessage(LogLevel level, const std::string &message);

/** The calling thread's current trace id ("" when none). */
const std::string &logTraceContext();

/**
 * RAII scope attaching a trace id to every log line the calling
 * thread emits; nests (the previous id is restored on exit). The
 * serve layer wraps each request's compilation in one of these so
 * stderr lines correlate with the request's trace_id.
 */
class LogTraceScope
{
  public:
    explicit LogTraceScope(std::string traceId);
    ~LogTraceScope();

    LogTraceScope(const LogTraceScope &) = delete;
    LogTraceScope &operator=(const LogTraceScope &) = delete;

  private:
    std::string _previous;
};

namespace detail {

/** One in-flight log line; emits on destruction. */
class LogLine
{
  public:
    explicit LogLine(LogLevel level) : _level(level) {}
    ~LogLine() { logMessage(_level, _oss.str()); }

    LogLine(const LogLine &) = delete;
    LogLine &operator=(const LogLine &) = delete;

    template <typename T>
    LogLine &
    operator<<(T &&value)
    {
        _oss << std::forward<T>(value);
        return *this;
    }

  private:
    LogLevel _level;
    std::ostringstream _oss;
};

} // namespace detail

/**
 * Stream one leveled log line:
 *
 *   AMOS_LOG(Debug) << "cache key " << key;
 *
 * When the level is filtered out the whole statement — including
 * the operands — is skipped.
 */
#define AMOS_LOG(level)                                             \
    if (!::amos::logEnabled(::amos::LogLevel::level))               \
        ;                                                           \
    else                                                            \
        ::amos::detail::LogLine(::amos::LogLevel::level)

/** Emit a non-fatal warning (a Warn-level log line). */
template <typename... Args>
void
warn(Args &&...args)
{
    if (logEnabled(LogLevel::Warn))
        logMessage(LogLevel::Warn,
                   detail::concat(std::forward<Args>(args)...));
}

/** Emit an informational status message (an Info-level line). */
template <typename... Args>
void
inform(Args &&...args)
{
    if (logEnabled(LogLevel::Info))
        logMessage(LogLevel::Info,
                   detail::concat(std::forward<Args>(args)...));
}

/**
 * Assert a framework invariant with a formatted message.
 *
 * Unlike assert(), stays active in release builds: mapping validity
 * and address arithmetic must never silently go wrong.
 */
template <typename... Args>
void
require(bool cond, Args &&...args)
{
    if (!cond)
        panic(std::forward<Args>(args)...);
}

/** Validate a user-supplied condition, raising fatal() on failure. */
template <typename... Args>
void
expect(bool cond, Args &&...args)
{
    if (!cond)
        fatal(std::forward<Args>(args)...);
}

} // namespace amos

#endif // AMOS_SUPPORT_LOGGING_HH
