#include "logging.hh"

#include <cctype>
#include <chrono>
#include <ctime>

namespace amos {

namespace {

LogLevel
parseThreshold()
{
    const char *env = std::getenv("AMOS_LOG");
    if (env == nullptr)
        return LogLevel::Info;
    std::string value(env);
    for (char &c : value)
        c = static_cast<char>(
            std::tolower(static_cast<unsigned char>(c)));
    if (value == "debug")
        return LogLevel::Debug;
    if (value == "info")
        return LogLevel::Info;
    if (value == "warn" || value == "warning")
        return LogLevel::Warn;
    if (value == "error")
        return LogLevel::Error;
    return LogLevel::Info;
}

std::string
utcTimestamp()
{
    using namespace std::chrono;
    auto now = system_clock::now();
    auto ms = duration_cast<milliseconds>(now.time_since_epoch()) %
              1000;
    std::time_t secs = system_clock::to_time_t(now);
    std::tm tm{};
#if defined(_WIN32)
    gmtime_s(&tm, &secs);
#else
    gmtime_r(&secs, &tm);
#endif
    char buf[40];
    std::snprintf(buf, sizeof(buf),
                  "%04d-%02d-%02dT%02d:%02d:%02d.%03dZ",
                  tm.tm_year + 1900, tm.tm_mon + 1, tm.tm_mday,
                  tm.tm_hour, tm.tm_min, tm.tm_sec,
                  static_cast<int>(ms.count()));
    return buf;
}

std::string &
traceContextSlot()
{
    thread_local std::string slot;
    return slot;
}

} // namespace

const char *
logLevelName(LogLevel level)
{
    switch (level) {
    case LogLevel::Debug:
        return "debug";
    case LogLevel::Info:
        return "info";
    case LogLevel::Warn:
        return "warn";
    case LogLevel::Error:
        return "error";
    }
    return "info";
}

LogLevel
logThreshold()
{
    static const LogLevel threshold = parseThreshold();
    return threshold;
}

bool
logEnabled(LogLevel level)
{
    return static_cast<int>(level) >=
           static_cast<int>(logThreshold());
}

void
logMessage(LogLevel level, const std::string &message)
{
    std::string line = utcTimestamp();
    line += " ";
    line += logLevelName(level);
    line += ": ";
    line += message;
    const std::string &trace = logTraceContext();
    if (!trace.empty())
        line += " [trace=" + trace + "]";
    line += "\n";
    // One fwrite keeps concurrent threads' lines whole.
    std::fwrite(line.data(), 1, line.size(), stderr);
}

const std::string &
logTraceContext()
{
    return traceContextSlot();
}

LogTraceScope::LogTraceScope(std::string traceId)
    : _previous(std::move(traceContextSlot()))
{
    traceContextSlot() = std::move(traceId);
}

LogTraceScope::~LogTraceScope()
{
    traceContextSlot() = std::move(_previous);
}

} // namespace amos
