#include "metrics.hh"

namespace amos {

MetricCounter &
MetricsRegistry::counter(const std::string &name)
{
    std::lock_guard<std::mutex> lock(_mutex);
    auto &slot = _counters[name];
    if (!slot)
        slot = std::make_unique<MetricCounter>();
    return *slot;
}

MetricGauge &
MetricsRegistry::gauge(const std::string &name)
{
    std::lock_guard<std::mutex> lock(_mutex);
    auto &slot = _gauges[name];
    if (!slot)
        slot = std::make_unique<MetricGauge>();
    return *slot;
}

std::map<std::string, std::uint64_t>
MetricsRegistry::counterValues() const
{
    std::map<std::string, std::uint64_t> out;
    std::lock_guard<std::mutex> lock(_mutex);
    for (const auto &[name, counter] : _counters)
        out[name] = counter->value();
    return out;
}

std::vector<std::pair<std::string, const MetricCounter *>>
MetricsRegistry::counterRefs() const
{
    std::vector<std::pair<std::string, const MetricCounter *>> out;
    std::lock_guard<std::mutex> lock(_mutex);
    out.reserve(_counters.size());
    for (const auto &[name, counter] : _counters)
        out.emplace_back(name, counter.get());
    return out;
}

std::map<std::string, double>
MetricsRegistry::gaugeValues() const
{
    std::map<std::string, double> out;
    std::lock_guard<std::mutex> lock(_mutex);
    for (const auto &[name, gauge] : _gauges)
        out[name] = gauge->value();
    return out;
}

Json
MetricsRegistry::toJson() const
{
    Json out = Json::object();
    std::lock_guard<std::mutex> lock(_mutex);
    for (const auto &[name, counter] : _counters)
        out.set(name,
                Json(static_cast<std::int64_t>(counter->value())));
    for (const auto &[name, gauge] : _gauges)
        out.set(name, Json(gauge->value()));
    return out;
}

MetricsRegistry &
MetricsRegistry::global()
{
    static MetricsRegistry registry;
    return registry;
}

} // namespace amos
