#include "json.hh"

#include <cctype>
#include <cmath>
#include <cstdio>

#include "logging.hh"

namespace amos {

Json
Json::array()
{
    Json j;
    j._kind = Kind::Array;
    return j;
}

Json
Json::object()
{
    Json j;
    j._kind = Kind::Object;
    return j;
}

bool
Json::asBool() const
{
    require(_kind == Kind::Bool, "Json::asBool on non-bool");
    return _bool;
}

double
Json::asNumber() const
{
    require(_kind == Kind::Number, "Json::asNumber on non-number");
    return _number;
}

std::int64_t
Json::asInt() const
{
    return static_cast<std::int64_t>(std::llround(asNumber()));
}

const std::string &
Json::asString() const
{
    require(_kind == Kind::String, "Json::asString on non-string");
    return _string;
}

void
Json::push(Json value)
{
    require(_kind == Kind::Array, "Json::push on non-array");
    _array.push_back(std::move(value));
}

std::size_t
Json::size() const
{
    require(_kind == Kind::Array, "Json::size on non-array");
    return _array.size();
}

const Json &
Json::at(std::size_t index) const
{
    require(_kind == Kind::Array, "Json::at on non-array");
    require(index < _array.size(), "Json::at out of range: ", index,
            " of ", _array.size());
    return _array[index];
}

void
Json::set(const std::string &key, Json value)
{
    require(_kind == Kind::Object, "Json::set on non-object");
    _object[key] = std::move(value);
}

bool
Json::has(const std::string &key) const
{
    require(_kind == Kind::Object, "Json::has on non-object");
    return _object.count(key) > 0;
}

const Json &
Json::get(const std::string &key) const
{
    require(_kind == Kind::Object, "Json::get on non-object");
    auto it = _object.find(key);
    require(it != _object.end(), "Json::get: missing key '", key,
            "'");
    return it->second;
}

const std::map<std::string, Json> &
Json::entries() const
{
    require(_kind == Kind::Object, "Json::entries on non-object");
    return _object;
}

namespace {

void
dumpString(std::string &out, const std::string &s)
{
    out += '"';
    for (char c : s) {
        switch (c) {
          case '"': out += "\\\""; break;
          case '\\': out += "\\\\"; break;
          case '\n': out += "\\n"; break;
          case '\t': out += "\\t"; break;
          case '\r': out += "\\r"; break;
          default: out += c;
        }
    }
    out += '"';
}

} // namespace

std::string
Json::dump() const
{
    std::string out;
    switch (_kind) {
      case Kind::Null:
        out = "null";
        break;
      case Kind::Bool:
        out = _bool ? "true" : "false";
        break;
      case Kind::Number: {
        // Integers print without a fraction for stable round-trips.
        if (_number == std::floor(_number) &&
            std::fabs(_number) < 1e15) {
            char buf[32];
            std::snprintf(buf, sizeof(buf), "%lld",
                          static_cast<long long>(_number));
            out = buf;
        } else {
            char buf[48];
            std::snprintf(buf, sizeof(buf), "%.17g", _number);
            out = buf;
        }
        break;
      }
      case Kind::String:
        dumpString(out, _string);
        break;
      case Kind::Array: {
        out = "[";
        for (std::size_t i = 0; i < _array.size(); ++i) {
            if (i)
                out += ",";
            out += _array[i].dump();
        }
        out += "]";
        break;
      }
      case Kind::Object: {
        out = "{";
        bool first = true;
        for (const auto &[key, value] : _object) {
            if (!first)
                out += ",";
            first = false;
            dumpString(out, key);
            out += ":";
            out += value.dump();
        }
        out += "}";
        break;
      }
    }
    return out;
}

namespace {

/** Recursive-descent JSON parser over a string view. */
class Parser
{
  public:
    explicit Parser(const std::string &text) : _text(text) {}

    Json
    parseDocument()
    {
        Json value = parseValue();
        skipSpace();
        expect(_pos == _text.size(),
               "json: trailing characters at offset ", _pos);
        return value;
    }

  private:
    void
    skipSpace()
    {
        while (_pos < _text.size() &&
               std::isspace(static_cast<unsigned char>(_text[_pos])))
            ++_pos;
    }

    char
    peek()
    {
        skipSpace();
        expect(_pos < _text.size(), "json: unexpected end of input");
        return _text[_pos];
    }

    void
    consume(char c)
    {
        expect(peek() == c, "json: expected '", c, "' at offset ",
               _pos);
        ++_pos;
    }

    bool
    tryConsume(char c)
    {
        if (_pos < _text.size() && peek() == c) {
            ++_pos;
            return true;
        }
        return false;
    }

    Json
    parseValue()
    {
        char c = peek();
        switch (c) {
          case '{': return parseObject();
          case '[': return parseArray();
          case '"': return Json(parseString());
          case 't':
            literal("true");
            return Json(true);
          case 'f':
            literal("false");
            return Json(false);
          case 'n':
            literal("null");
            return Json();
          default: return parseNumber();
        }
    }

    void
    literal(const char *word)
    {
        skipSpace();
        std::size_t len = std::string(word).size();
        expect(_text.compare(_pos, len, word) == 0,
               "json: bad literal at offset ", _pos);
        _pos += len;
    }

    std::string
    parseString()
    {
        consume('"');
        std::string out;
        while (true) {
            expect(_pos < _text.size(),
                   "json: unterminated string");
            char c = _text[_pos++];
            if (c == '"')
                break;
            if (c == '\\') {
                expect(_pos < _text.size(),
                       "json: dangling escape");
                char esc = _text[_pos++];
                switch (esc) {
                  case '"': out += '"'; break;
                  case '\\': out += '\\'; break;
                  case '/': out += '/'; break;
                  case 'n': out += '\n'; break;
                  case 't': out += '\t'; break;
                  case 'r': out += '\r'; break;
                  default:
                    fatal("json: unsupported escape '\\", esc, "'");
                }
            } else {
                out += c;
            }
        }
        return out;
    }

    Json
    parseNumber()
    {
        skipSpace();
        std::size_t start = _pos;
        while (_pos < _text.size() &&
               (std::isdigit(static_cast<unsigned char>(
                    _text[_pos])) ||
                _text[_pos] == '-' || _text[_pos] == '+' ||
                _text[_pos] == '.' || _text[_pos] == 'e' ||
                _text[_pos] == 'E'))
            ++_pos;
        expect(_pos > start, "json: expected a number at offset ",
               start);
        try {
            return Json(std::stod(_text.substr(start, _pos - start)));
        } catch (const std::exception &) {
            fatal("json: malformed number at offset ", start);
        }
    }

    Json
    parseArray()
    {
        consume('[');
        Json out = Json::array();
        if (tryConsume(']'))
            return out;
        while (true) {
            out.push(parseValue());
            if (tryConsume(']'))
                return out;
            consume(',');
        }
    }

    Json
    parseObject()
    {
        consume('{');
        Json out = Json::object();
        if (tryConsume('}'))
            return out;
        while (true) {
            std::string key = parseString();
            consume(':');
            out.set(key, parseValue());
            if (tryConsume('}'))
                return out;
            consume(',');
        }
    }

    const std::string &_text;
    std::size_t _pos = 0;
};

} // namespace

Json
Json::parse(const std::string &text)
{
    return Parser(text).parseDocument();
}

} // namespace amos
