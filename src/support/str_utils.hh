/**
 * @file
 * String helpers: joining, fixed-width table formatting used by the
 * benchmark harnesses to print paper-style rows.
 */

#ifndef AMOS_SUPPORT_STR_UTILS_HH
#define AMOS_SUPPORT_STR_UTILS_HH

#include <string>
#include <vector>

namespace amos {

/** Join string items with a separator. */
std::string join(const std::vector<std::string> &items,
                 const std::string &sep);

/**
 * Render items with a per-item printer joined by a separator, e.g.
 * joinMapped(extents, "x", [](auto e){ return std::to_string(e); }).
 */
template <typename T, typename Fn>
std::string
joinMapped(const std::vector<T> &items, const std::string &sep, Fn fn)
{
    std::string out;
    for (std::size_t i = 0; i < items.size(); ++i) {
        if (i)
            out += sep;
        out += fn(items[i]);
    }
    return out;
}

/** Left-pad (align right) to the given width. */
std::string padLeft(const std::string &s, std::size_t width);

/** Right-pad (align left) to the given width. */
std::string padRight(const std::string &s, std::size_t width);

/** Format a double with fixed precision. */
std::string fmtDouble(double v, int precision = 2);

/**
 * Minimal text table used by benches: set headers, add string rows,
 * print with aligned columns.
 */
class TextTable
{
  public:
    explicit TextTable(std::vector<std::string> headers);

    void addRow(std::vector<std::string> row);

    /** Render the whole table, header first, columns aligned. */
    std::string toString() const;

  private:
    std::vector<std::string> _headers;
    std::vector<std::vector<std::string>> _rows;
};

} // namespace amos

#endif // AMOS_SUPPORT_STR_UTILS_HH
