/**
 * @file
 * Small integer/floating-point math helpers shared across modules:
 * ceiling division, divisor enumeration, tiling-factor enumeration,
 * and geometric means for benchmark reporting.
 */

#ifndef AMOS_SUPPORT_MATH_UTILS_HH
#define AMOS_SUPPORT_MATH_UTILS_HH

#include <cstdint>
#include <vector>

namespace amos {

/** Ceiling division for positive integers. */
inline std::int64_t
ceilDiv(std::int64_t a, std::int64_t b)
{
    return (a + b - 1) / b;
}

/** Round a up to the next multiple of b (b > 0). */
inline std::int64_t
roundUp(std::int64_t a, std::int64_t b)
{
    return ceilDiv(a, b) * b;
}

/** All positive divisors of n, ascending. */
std::vector<std::int64_t> divisorsOf(std::int64_t n);

/**
 * Candidate tile sizes for a loop of the given extent.
 *
 * Returns the divisors of the extent augmented with nearby powers of
 * two (tiles need not divide the extent; the remainder becomes a
 * partial tile), clipped to [1, extent].
 */
std::vector<std::int64_t> tileCandidates(std::int64_t extent);

/**
 * Enumerate all ways to split `extent` into `parts` factors whose
 * product covers the extent (each factor drawn from tileCandidates).
 * Used by exhaustive schedule sweeps in tests; the tuner samples
 * instead.
 */
std::vector<std::vector<std::int64_t>> factorSplits(std::int64_t extent,
                                                    int parts);

/** Geometric mean of positive values; 0 if empty. */
double geometricMean(const std::vector<double> &values);

/** Product of a vector of extents. */
std::int64_t product(const std::vector<std::int64_t> &values);

} // namespace amos

#endif // AMOS_SUPPORT_MATH_UTILS_HH
