#include "trace.hh"

#include <algorithm>
#include <cstdio>
#include <cstring>
#include <fstream>

#include "support/flight_recorder.hh"
#include "support/logging.hh"
#include "support/metrics.hh"

namespace amos {

namespace {

/// Default per-thread span cap: ~64k spans x ~200 B is a bounded
/// ~13 MB/thread worst case for a long-lived --trace-out server.
constexpr std::size_t kDefaultSpanCap = 1 << 16;

thread_local std::string tls_trace_id;

/**
 * One-entry thread-local cache of (tracer, buffer). Only the global
 * tracer is hot; tests that construct private Tracer instances just
 * re-register on the (rare) owner switch.
 */
struct TlsBufferCache
{
    const void *owner = nullptr;
    void *buffer = nullptr;
};
thread_local TlsBufferCache tls_buffer_cache;

} // namespace

Tracer::Tracer()
    : _spanCap(kDefaultSpanCap),
      _dropCounter(
          &MetricsRegistry::global().counter("trace.dropped_spans")),
      _epoch(Clock::now())
{}

void
Tracer::setEnabled(bool enabled)
{
    _enabled.store(enabled, std::memory_order_relaxed);
}

Tracer::ThreadBuffer &
Tracer::threadBuffer()
{
    if (tls_buffer_cache.owner == this)
        return *static_cast<ThreadBuffer *>(tls_buffer_cache.buffer);
    auto buffer = std::make_shared<ThreadBuffer>();
    {
        std::lock_guard<std::mutex> lock(_registryMutex);
        buffer->tid = _nextTid++;
        _buffers.push_back(buffer);
    }
    // The shared_ptr in _buffers keeps the buffer alive for the
    // tracer's lifetime, so the raw cached pointer stays valid even
    // after the owning thread exits.
    tls_buffer_cache.owner = this;
    tls_buffer_cache.buffer = buffer.get();
    return *buffer;
}

void
Tracer::record(SpanRecord record)
{
    ThreadBuffer &buffer = threadBuffer();
    record.tid = buffer.tid;
    std::lock_guard<std::mutex> lock(buffer.mutex);
    if (buffer.spans.size() >=
        _spanCap.load(std::memory_order_relaxed)) {
        _dropped.fetch_add(1, std::memory_order_relaxed);
        _dropCounter->add();
        return;
    }
    buffer.spans.push_back(std::move(record));
}

void
Tracer::setSpanCapPerThread(std::size_t cap)
{
    _spanCap.store(cap, std::memory_order_relaxed);
}

std::size_t
Tracer::spanCapPerThread() const
{
    return _spanCap.load(std::memory_order_relaxed);
}

std::uint64_t
Tracer::droppedSpans() const
{
    return _dropped.load(std::memory_order_relaxed);
}

void
Tracer::clear()
{
    std::lock_guard<std::mutex> lock(_registryMutex);
    for (auto &buffer : _buffers) {
        std::lock_guard<std::mutex> buffer_lock(buffer->mutex);
        buffer->spans.clear();
    }
}

std::vector<SpanRecord>
Tracer::collect() const
{
    std::vector<SpanRecord> out;
    std::lock_guard<std::mutex> lock(_registryMutex);
    for (const auto &buffer : _buffers) {
        std::lock_guard<std::mutex> buffer_lock(buffer->mutex);
        out.insert(out.end(), buffer->spans.begin(),
                   buffer->spans.end());
    }
    return out;
}

std::size_t
Tracer::spanCount() const
{
    std::size_t count = 0;
    std::lock_guard<std::mutex> lock(_registryMutex);
    for (const auto &buffer : _buffers) {
        std::lock_guard<std::mutex> buffer_lock(buffer->mutex);
        count += buffer->spans.size();
    }
    return count;
}

std::size_t
Tracer::releaseTrace(const std::string &traceId)
{
    std::size_t erased = 0;
    std::lock_guard<std::mutex> lock(_registryMutex);
    for (auto &buffer : _buffers) {
        std::lock_guard<std::mutex> buffer_lock(buffer->mutex);
        auto it = std::remove_if(
            buffer->spans.begin(), buffer->spans.end(),
            [&](const SpanRecord &s) { return s.traceId == traceId; });
        erased += static_cast<std::size_t>(buffer->spans.end() - it);
        buffer->spans.erase(it, buffer->spans.end());
    }
    return erased;
}

Json
Tracer::toChromeJson() const
{
    auto spans = collect();
    // Stable presentation order: by start time, ties by duration
    // descending so parents precede children.
    std::sort(spans.begin(), spans.end(),
              [](const SpanRecord &a, const SpanRecord &b) {
                  if (a.startUs != b.startUs)
                      return a.startUs < b.startUs;
                  return a.durUs > b.durUs;
              });
    Json events = Json::array();
    for (const auto &span : spans) {
        Json event = Json::object();
        event.set("name", Json(span.name));
        event.set("cat", Json(span.category));
        event.set("ph", Json("X"));
        event.set("ts", Json(span.startUs));
        event.set("dur", Json(span.durUs));
        event.set("pid", Json(1));
        event.set("tid",
                  Json(static_cast<std::int64_t>(span.tid)));
        if (!span.args.empty() || !span.traceId.empty()) {
            Json args = Json::object();
            if (!span.traceId.empty())
                args.set("trace_id", Json(span.traceId));
            for (const auto &[key, value] : span.args)
                args.set(key, Json(value));
            event.set("args", std::move(args));
        }
        events.push(std::move(event));
    }
    Json out = Json::object();
    out.set("traceEvents", std::move(events));
    out.set("displayTimeUnit", Json("ms"));
    return out;
}

void
Tracer::writeFile(const std::string &path) const
{
    std::ofstream out(path);
    expect(out.good(), "trace: cannot write ", path);
    out << toChromeJson().dump() << "\n";
    expect(out.good(), "trace: write to ", path, " failed");
}

namespace {

/** Node of the span tree built by spanTreeFor. */
struct TreeNode
{
    const SpanRecord *span;
    std::vector<std::size_t> children;
};

Json
treeToJson(const std::vector<TreeNode> &nodes, std::size_t index)
{
    const SpanRecord &span = *nodes[index].span;
    Json out = Json::object();
    out.set("name", Json(span.name));
    out.set("cat", Json(span.category));
    out.set("start_us", Json(span.startUs));
    out.set("dur_us", Json(span.durUs));
    if (!span.args.empty()) {
        Json args = Json::object();
        for (const auto &[key, value] : span.args)
            args.set(key, Json(value));
        out.set("args", std::move(args));
    }
    if (!nodes[index].children.empty()) {
        Json children = Json::array();
        for (auto c : nodes[index].children)
            children.push(treeToJson(nodes, c));
        out.set("children", std::move(children));
    }
    return out;
}

} // namespace

Json
Tracer::spanTreeFor(const std::string &traceId) const
{
    std::vector<SpanRecord> spans;
    for (auto &span : collect())
        if (span.traceId == traceId)
            spans.push_back(std::move(span));
    std::sort(spans.begin(), spans.end(),
              [](const SpanRecord &a, const SpanRecord &b) {
                  if (a.startUs != b.startUs)
                      return a.startUs < b.startUs;
                  return a.durUs > b.durUs;
              });

    // Parent = innermost already-placed span that contains this one
    // in time. Same-thread containment is exact (scoped spans nest);
    // cross-thread containment approximates the fork structure of
    // parallelFor, which is what a reader wants to see.
    std::vector<TreeNode> nodes;
    std::vector<std::size_t> roots;
    std::vector<std::size_t> stack; // indices of open ancestors
    for (const auto &span : spans) {
        nodes.push_back({&span, {}});
        std::size_t index = nodes.size() - 1;
        while (!stack.empty()) {
            const SpanRecord &top = *nodes[stack.back()].span;
            if (span.startUs >= top.startUs &&
                span.startUs + span.durUs <=
                    top.startUs + top.durUs + 1e-6)
                break;
            stack.pop_back();
        }
        if (stack.empty())
            roots.push_back(index);
        else
            nodes[stack.back()].children.push_back(index);
        stack.push_back(index);
    }

    Json tree = Json::array();
    for (auto r : roots)
        tree.push(treeToJson(nodes, r));
    Json out = Json::object();
    out.set("trace_id", Json(traceId));
    out.set("spans", std::move(tree));
    return out;
}

Tracer &
Tracer::global()
{
    static Tracer tracer;
    return tracer;
}

TraceContext::TraceContext(std::string traceId)
    : _previous(std::move(tls_trace_id))
{
    tls_trace_id = std::move(traceId);
}

TraceContext::~TraceContext()
{
    tls_trace_id = std::move(_previous);
}

const std::string &
TraceContext::currentId()
{
    return tls_trace_id;
}

TraceSpan::TraceSpan(const char *name, const char *category)
    : _active(Tracer::global().enabled() || !tls_trace_id.empty()),
      _flight(FlightRecorder::currentSeq() != 0 &&
              FlightRecorder::global().enabled()),
      _name(name), _category(category)
{
    if (_flight) {
        _flightSeq = FlightRecorder::currentSeq();
        _flightArgs[0] = '\0';
    }
    if (_active || _flight)
        _start = Tracer::Clock::now();
}

void
TraceSpan::arg(const char *key, std::string value)
{
    if (_flight) {
        // Append "key=value" to the fixed inline buffer; silently
        // truncated — flight records trade fidelity for zero
        // allocation on the speculative path.
        int n = std::snprintf(
            _flightArgs + _flightArgsLen,
            sizeof(_flightArgs) - _flightArgsLen, "%s%s=%s",
            _flightArgsLen > 0 ? " " : "", key, value.c_str());
        if (n > 0)
            _flightArgsLen = std::min(
                _flightArgsLen + static_cast<std::size_t>(n),
                sizeof(_flightArgs) - 1);
    }
    if (_active)
        _args.emplace_back(key, std::move(value));
}

TraceSpan::~TraceSpan()
{
    if (!_active && !_flight)
        return;
    auto end = Tracer::Clock::now();
    if (_flight) {
        FlightRecorder &recorder = FlightRecorder::global();
        FlightRecord record;
        record.name = _name;
        record.category = _category;
        record.seq = _flightSeq;
        record.startUs = recorder.sinceEpochUs(_start);
        record.durUs =
            std::chrono::duration<double, std::micro>(end - _start)
                .count();
        static_assert(sizeof(record.args) == sizeof(_flightArgs),
                      "inline arg buffers must match");
        std::memcpy(record.args, _flightArgs, sizeof(_flightArgs));
        recorder.push(record);
    }
    if (!_active)
        return;
    Tracer &tracer = Tracer::global();
    SpanRecord record;
    record.name = _name;
    record.category = _category;
    record.traceId = tls_trace_id;
    record.args = std::move(_args);
    record.startUs = tracer.sinceEpochUs(_start);
    record.durUs =
        std::chrono::duration<double, std::micro>(end - _start)
            .count();
    tracer.record(std::move(record));
}

} // namespace amos
