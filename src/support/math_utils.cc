#include "math_utils.hh"

#include <algorithm>
#include <cmath>
#include <set>

#include "logging.hh"

namespace amos {

std::vector<std::int64_t>
divisorsOf(std::int64_t n)
{
    require(n > 0, "divisorsOf: n must be positive, got ", n);
    std::vector<std::int64_t> small, large;
    for (std::int64_t d = 1; d * d <= n; ++d) {
        if (n % d == 0) {
            small.push_back(d);
            if (d != n / d)
                large.push_back(n / d);
        }
    }
    small.insert(small.end(), large.rbegin(), large.rend());
    return small;
}

std::vector<std::int64_t>
tileCandidates(std::int64_t extent)
{
    require(extent > 0, "tileCandidates: extent must be positive");
    std::set<std::int64_t> cands;
    for (auto d : divisorsOf(extent))
        cands.insert(d);
    for (std::int64_t p = 1; p <= extent; p *= 2)
        cands.insert(p);
    cands.insert(extent);
    return {cands.begin(), cands.end()};
}

namespace {

void
splitsRec(std::int64_t remaining, int parts,
          const std::vector<std::int64_t> &cands,
          std::vector<std::int64_t> &cur,
          std::vector<std::vector<std::int64_t>> &out)
{
    if (parts == 1) {
        cur.push_back(remaining);
        out.push_back(cur);
        cur.pop_back();
        return;
    }
    for (auto c : cands) {
        if (c > remaining)
            break;
        cur.push_back(c);
        splitsRec(ceilDiv(remaining, c), parts - 1, cands, cur, out);
        cur.pop_back();
    }
}

} // namespace

std::vector<std::vector<std::int64_t>>
factorSplits(std::int64_t extent, int parts)
{
    require(parts >= 1, "factorSplits: parts must be >= 1");
    std::vector<std::vector<std::int64_t>> out;
    std::vector<std::int64_t> cur;
    auto cands = tileCandidates(extent);
    splitsRec(extent, parts, cands, cur, out);
    return out;
}

double
geometricMean(const std::vector<double> &values)
{
    if (values.empty())
        return 0.0;
    double log_sum = 0.0;
    for (double v : values) {
        require(v > 0.0, "geometricMean: values must be positive");
        log_sum += std::log(v);
    }
    return std::exp(log_sum / static_cast<double>(values.size()));
}

std::int64_t
product(const std::vector<std::int64_t> &values)
{
    std::int64_t p = 1;
    for (auto v : values)
        p *= v;
    return p;
}

} // namespace amos
