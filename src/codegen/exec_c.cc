#include "exec_c.hh"

#include <cstdlib>
#include <functional>
#include <sstream>

#include "quant/semantics.hh"
#include "support/logging.hh"

namespace amos {

namespace {

/** C spelling of a storage lane's element type. */
const char *
laneCType(StorageLane lane)
{
    switch (lane) {
      case StorageLane::F32: return "float";
      case StorageLane::BF16: return "uint16_t";
      case StorageLane::I8: return "int8_t";
      case StorageLane::U8: return "uint8_t";
      case StorageLane::I32: return "int32_t";
    }
    std::abort(); // unreachable for in-range enumerators
}

/**
 * Kernel semantics and per-operand lanes derived from declared
 * dtypes (inputs..., output). An empty vector is the all-f32 legacy
 * shape. Mirrors quant::classifyComputation, which callers have
 * already consulted — this re-derivation only rejects combinations
 * that could not have passed classification.
 */
struct EmitTypes
{
    quant::KernelSemantics kind = quant::KernelSemantics::F32;
    std::vector<StorageLane> inLanes;
    StorageLane outLane = StorageLane::F32;
};

EmitTypes
emitTypesFor(const std::vector<DataType> &dtypes, std::size_t numInputs)
{
    EmitTypes t;
    if (dtypes.empty()) {
        t.inLanes.assign(numInputs, StorageLane::F32);
        return t;
    }
    require(dtypes.size() == numInputs + 1,
            "exec_c: operand dtype count mismatch");
    for (std::size_t i = 0; i < numInputs; ++i)
        t.inLanes.push_back(dtypeStorageLane(dtypes[i]));
    t.outLane = dtypeStorageLane(dtypes.back());
    if (t.outLane == StorageLane::I32) {
        t.kind = quant::KernelSemantics::IntDot;
        for (auto l : t.inLanes)
            require(l == StorageLane::I8 || l == StorageLane::U8,
                    "exec_c: int32 accumulator needs 8-bit inputs");
    } else {
        require(t.outLane == StorageLane::F32,
                "exec_c: unsupported output lane ",
                laneCType(t.outLane));
        bool anyBf16 = false;
        for (auto l : t.inLanes) {
            require(l == StorageLane::F32 || l == StorageLane::BF16,
                    "exec_c: unsupported input lane ", laneCType(l));
            anyBf16 = anyBf16 || l == StorageLane::BF16;
        }
        if (anyBf16)
            t.kind = quant::KernelSemantics::Bf16;
    }
    return t;
}

/** Tiny indented-C writer. */
struct CWriter
{
    std::ostringstream out;
    int depth = 0;

    void line(const std::string &s)
    {
        for (int i = 0; i < depth; ++i)
            out << "    ";
        out << s << '\n';
    }
    void open(const std::string &head)
    {
        line(head + " {");
        ++depth;
    }
    void close()
    {
        --depth;
        line("}");
    }
};

/** Integer literal; negatives parenthesised for use inside products. */
std::string
lit(std::int64_t v)
{
    std::string s = std::to_string(v) + "L";
    return v < 0 ? "(" + s + ")" : s;
}

/** "var" / "var * c" term, folding unit coefficients. */
std::string
term(const std::string &var, std::int64_t coeff)
{
    return coeff == 1 ? var : var + " * " + lit(coeff);
}

std::string
joinTerms(const std::string &head, const std::vector<std::string> &ts)
{
    std::string s = head;
    for (const auto &t : ts)
        s += " + " + t;
    return s;
}

/** Strip comment terminators so descriptions stay inside comments. */
std::string
sanitizeComment(std::string s)
{
    for (std::size_t p; (p = s.find("*/")) != std::string::npos;)
        s[p + 1] = ' ';
    return s;
}

using NestBody =
    std::function<void(CWriter &, const std::vector<std::string> &)>;

/**
 * Emit a pure affine loop nest (the stride walk's closed form): one
 * `for` per level, partial flat addresses hoisted at the level where
 * their stride applies, and the innermost stride left inline so the
 * compiler sees a unit-step induction it can vectorize.
 */
void
emitAffineNest(CWriter &w, const AccessWalkPlan &plan,
               const std::string &pfx, const NestBody &body)
{
    const std::size_t L = plan.extents.size();
    const std::size_t M = plan.operands.size();
    for (auto e : plan.extents) {
        if (e <= 0) {
            w.line("/* " + pfx + ": empty iteration space */");
            return;
        }
    }

    std::vector<std::string> part(M);
    for (std::size_t m = 0; m < M; ++m)
        part[m] = lit(plan.operands[m].base);

    if (L == 0) {
        body(w, part);
        return;
    }

    auto loopVar = [&](std::size_t l) {
        return pfx + "i" + std::to_string(l);
    };
    for (std::size_t l = 0; l + 1 < L; ++l) {
        const std::string iv = loopVar(l);
        w.open("for (long " + iv + " = 0; " + iv + " < " +
               lit(plan.extents[l]) + "; ++" + iv + ")");
        for (std::size_t m = 0; m < M; ++m) {
            const std::int64_t s = plan.operands[m].stride[l];
            if (s == 0)
                continue;
            const std::string name = pfx + "a" + std::to_string(m) +
                                     "_" + std::to_string(l);
            w.line("const long " + name + " = " + part[m] + " + " +
                   term(iv, s) + ";");
            part[m] = name;
        }
    }

    const std::size_t last = L - 1;
    const std::string iv = loopVar(last);
    w.open("for (long " + iv + " = 0; " + iv + " < " +
           lit(plan.extents[last]) + "; ++" + iv + ")");
    std::vector<std::string> addr(M);
    for (std::size_t m = 0; m < M; ++m) {
        const std::int64_t s = plan.operands[m].stride[last];
        addr[m] = s == 0 ? part[m] : part[m] + " + " + term(iv, s);
    }
    body(w, addr);
    for (std::size_t l = 0; l < L; ++l)
        w.close();
}

/**
 * Emit the mapped execution nest of an ExecPlan — the closed form of
 * runMappedWalkRange: outer axis loops, per-group tile-start flats
 * and padding clamps, then one counter loop per group whose software
 * digits are decoded from the fused flat value (skipped entirely when
 * every operand's digit coefficients are proportional to the digit
 * strides, in which case the contribution is alpha * flat and stays
 * linear in the counter). Addresses are pure functions of
 * (axes, counters), so the emitted nest visits exactly the walker's
 * tuples in exactly its order.
 */
void
emitMappedNest(CWriter &w, const ExecPlan &plan,
               const std::vector<const ExecPlan::Operand *> &ops,
               const std::string &pfx, const NestBody &body)
{
    const auto &axes = plan.axes();
    const auto &groups = plan.groups();
    const std::size_t A = axes.size();
    const std::size_t K = groups.size();
    const std::size_t M = ops.size();

    for (const auto &ax : axes) {
        if (ax.extent <= 0) {
            w.line("/* " + pfx + ": empty axis sweep */");
            return;
        }
    }

    auto swCoeff = [&](std::size_t m, std::size_t s) -> std::int64_t {
        return s < ops[m]->swCoeff.size() ? ops[m]->swCoeff[s] : 0;
    };
    auto tStride = [&](std::size_t m, std::size_t k) -> std::int64_t {
        return k < ops[m]->tStride.size() ? ops[m]->tStride[k] : 0;
    };
    auto outerStride = [&](std::size_t m,
                           std::size_t a) -> std::int64_t {
        return a < ops[m]->outerStride.size() ? ops[m]->outerStride[a]
                                              : 0;
    };

    // Per-group digit strides within the fused flat value, and
    // whether flat values are guaranteed in-range for a closed-form
    // linear decode (always true for well-formed plans).
    std::vector<std::vector<std::int64_t>> dstr(K);
    std::vector<bool> canLinear(K, false);
    for (std::size_t k = 0; k < K; ++k) {
        const auto &g = groups[k];
        dstr[k].assign(g.members.size(), 1);
        std::int64_t prod = 1;
        for (std::size_t pos = g.members.size(); pos-- > 0;) {
            if (pos + 1 < g.members.size())
                dstr[k][pos] = dstr[k][pos + 1] * g.extents[pos + 1];
            prod *= g.extents[pos];
        }
        canLinear[k] = g.fusedExtent <= prod;
    }
    // alpha such that digit contribution == alpha * flat, or nullopt.
    auto linearAlpha =
        [&](std::size_t m,
            std::size_t k) -> std::optional<std::int64_t> {
        const auto &g = groups[k];
        if (g.members.empty())
            return 0;
        bool anyNonZero = false;
        for (auto s : g.members)
            anyNonZero = anyNonZero || swCoeff(m, s) != 0;
        if (!anyNonZero)
            return 0;
        if (!canLinear[k])
            return std::nullopt;
        const std::int64_t alpha = swCoeff(m, g.members.back());
        for (std::size_t pos = 0; pos < g.members.size(); ++pos)
            if (swCoeff(m, g.members[pos]) != alpha * dstr[k][pos])
                return std::nullopt;
        return alpha;
    };

    std::vector<std::string> part(M);
    for (std::size_t m = 0; m < M; ++m)
        part[m] = lit(ops[m]->base);

    // Outer axis loops; unmapped axes feed software coefficients,
    // every axis feeds packed-tile outer strides.
    auto axVar = [&](std::size_t a) {
        return pfx + "x" + std::to_string(a);
    };
    for (std::size_t a = 0; a < A; ++a) {
        const std::string xv = axVar(a);
        w.open("for (long " + xv + " = 0; " + xv + " < " +
               lit(axes[a].extent) + "; ++" + xv + ")");
        for (std::size_t m = 0; m < M; ++m) {
            std::int64_t c = outerStride(m, a);
            if (!axes[a].isQuotient)
                c += swCoeff(m, axes[a].ref);
            if (c == 0)
                continue;
            const std::string name = pfx + "p" + std::to_string(m) +
                                     "_x" + std::to_string(a);
            w.line("const long " + name + " = " + part[m] + " + " +
                   term(xv, c) + ";");
            part[m] = name;
        }
    }

    // Tile-start flats and padding clamps, exactly the walker's
    // lim_k = min(I_k, F_k - q_k * I_k); a tile with any lim <= 0 is
    // pure padding and is skipped.
    std::vector<std::string> fstart(K), limExpr(K);
    std::vector<std::string> guards;
    bool deadTile = false;
    for (std::size_t k = 0; k < K; ++k) {
        const auto &g = groups[k];
        int quotAxis = -1;
        for (std::size_t a = 0; a < A; ++a)
            if (axes[a].isQuotient && axes[a].ref == k)
                quotAxis = static_cast<int>(a);
        if (quotAxis < 0) {
            fstart[k] = "0L";
            const std::int64_t limc =
                std::min(g.intrinsicExtent, g.fusedExtent);
            limExpr[k] = lit(limc);
            deadTile = deadTile || limc <= 0;
            continue;
        }
        const std::string fs = pfx + "f" + std::to_string(k) + "s";
        const std::string lim = pfx + "lim" + std::to_string(k);
        w.line("const long " + fs + " = " +
               term(axVar(static_cast<std::size_t>(quotAxis)),
                    g.intrinsicExtent) +
               ";");
        w.line("const long " + lim + " = " + lit(g.fusedExtent) +
               " - " + fs + " < " + lit(g.intrinsicExtent) + " ? " +
               lit(g.fusedExtent) + " - " + fs + " : " +
               lit(g.intrinsicExtent) + ";");
        fstart[k] = fs;
        limExpr[k] = lim;
        guards.push_back(lim + " > 0");
    }
    if (deadTile) {
        w.line("/* " + pfx + ": every tile is pure padding */");
        for (std::size_t a = 0; a < A; ++a)
            w.close();
        return;
    }
    bool guarded = !guards.empty();
    if (guarded) {
        std::string cond = guards[0];
        for (std::size_t i = 1; i < guards.size(); ++i)
            cond += " && " + guards[i];
        w.open("if (" + cond + ")");
    }

    // Group counter loops, innermost last — the walker's digit
    // odometer in closed form.
    for (std::size_t k = 0; k < K; ++k) {
        const auto &g = groups[k];
        const std::string tv = pfx + "t" + std::to_string(k);
        w.open("for (long " + tv + " = 0; " + tv + " < " +
               limExpr[k] + "; ++" + tv + ")");
        const std::string fexpr =
            fstart[k] == "0L" ? tv : fstart[k] + " + " + tv;

        // First pass: which operands force a digit decode?
        std::vector<std::optional<std::int64_t>> alpha(M);
        bool needDecode = false;
        for (std::size_t m = 0; m < M; ++m) {
            alpha[m] = linearAlpha(m, k);
            needDecode = needDecode || !alpha[m];
        }
        auto digitVar = [&](std::size_t pos) {
            return pfx + "d" + std::to_string(k) + "_" +
                   std::to_string(pos);
        };
        if (needDecode) {
            const std::string fv = pfx + "f" + std::to_string(k);
            w.line("long " + fv + " = " + fexpr + ";");
            for (std::size_t pos = g.members.size(); pos-- > 0;) {
                w.line("const long " + digitVar(pos) + " = " + fv +
                       " % " + lit(g.extents[pos]) + ";");
                if (pos > 0)
                    w.line(fv + " /= " + lit(g.extents[pos]) + ";");
            }
        }
        for (std::size_t m = 0; m < M; ++m) {
            std::vector<std::string> terms;
            if (tStride(m, k) != 0)
                terms.push_back(term(tv, tStride(m, k)));
            if (alpha[m]) {
                if (*alpha[m] != 0)
                    terms.push_back(term("(" + fexpr + ")",
                                         *alpha[m]));
            } else {
                for (std::size_t pos = 0; pos < g.members.size();
                     ++pos) {
                    const std::int64_t c =
                        swCoeff(m, g.members[pos]);
                    if (c != 0)
                        terms.push_back(term(digitVar(pos), c));
                }
            }
            if (terms.empty())
                continue;
            const std::string name = pfx + "p" + std::to_string(m) +
                                     "_t" + std::to_string(k);
            w.line("const long " + name + " = " +
                   joinTerms(part[m], terms) + ";");
            part[m] = name;
        }
    }

    body(w, part);

    for (std::size_t k = 0; k < K; ++k)
        w.close();
    if (guarded)
        w.close();
    for (std::size_t a = 0; a < A; ++a)
        w.close();
}

/**
 * Load expression for one input operand: bf16 lanes widen through
 * the emitted helper, IntDot lanes widen to the int64 arithmetic
 * domain — mirroring the host loaders in quant/typed_exec.hh.
 */
std::string
loadExpr(const EmitTypes &t, std::size_t m, const std::string &ptr,
         const std::string &addr)
{
    const std::string elem = ptr + "[" + addr + "]";
    if (t.inLanes[m] == StorageLane::BF16)
        return "amos_bf16_to_f32(" + elem + ")";
    if (t.kind == quant::KernelSemantics::IntDot)
        return "(int64_t)" + elem;
    return elem;
}

/**
 * out[a_out] (+)= in0[a0] (* in1[a1]) with the given pointer names.
 * Float disciplines accumulate in place; IntDot goes through an
 * int64 intermediate with a wrapping cast back to int32, exactly
 * quant::intDotStep.
 */
NestBody
accumulateBody(CombineKind combine, const EmitTypes &types,
               std::vector<std::string> ptrs)
{
    return [combine, types, ptrs = std::move(ptrs)](
               CWriter &w, const std::vector<std::string> &a) {
        const std::size_t oi = ptrs.size() - 1;
        const std::string out = ptrs[oi] + "[" + a[oi] + "]";
        std::string rhs = loadExpr(types, 0, ptrs[0], a[0]);
        if (combine == CombineKind::MultiplyAdd)
            rhs += " * " + loadExpr(types, 1, ptrs[1], a[1]);
        if (types.kind == quant::KernelSemantics::IntDot)
            w.line(out + " = (int32_t)((int64_t)" + out + " + " + rhs +
                   ");");
        else
            w.line(out + " += " + rhs + ";");
    };
}

void
emitPrologue(CWriter &w, const std::string &kind,
             const std::string &description, bool needsStdlib,
             const EmitTypes &types)
{
    w.line("/* amos jit exec kernel (" + kind + ")");
    w.line(" * " + sanitizeComment(description));
    w.line(" *");
    w.line(" * Loop order matches the stride-walk engine exactly, so");
    w.line(" * accumulation — floating-point bits and wrapped int32");
    w.line(" * alike — is bit-identical to the interpreter. Do not");
    w.line(" * compile with -ffast-math.");
    w.line(" */");
    w.line("#include <stdint.h>");
    if (needsStdlib)
        w.line("#include <stdlib.h>");
    bool anyBf16 = false;
    for (auto l : types.inLanes)
        anyBf16 = anyBf16 || l == StorageLane::BF16;
    if (anyBf16) {
        w.line("");
        w.open("static inline float amos_bf16_to_f32(uint16_t b)");
        w.line("union { uint32_t u; float f; } v;");
        w.line("v.u = (uint32_t)b << 16;");
        w.line("return v.f;");
        w.close();
    }
    w.line("");
    w.open("void amos_exec_kernel(const void *const *inputs, "
           "void *output)");
}

/** Bind restrict-qualified typed operand pointers in0.., out. */
void
emitOperandPointers(CWriter &w, const EmitTypes &types)
{
    for (std::size_t i = 0; i < types.inLanes.size(); ++i) {
        const std::string ty = laneCType(types.inLanes[i]);
        w.line("const " + ty + " *restrict in" + std::to_string(i) +
               " = (const " + ty + " *)inputs[" + std::to_string(i) +
               "];");
    }
    const std::string oty = laneCType(types.outLane);
    w.line(oty + " *restrict out = (" + oty + " *)output;");
}

std::vector<std::string>
inputPtrNames(std::size_t numInputs)
{
    std::vector<std::string> ptrs;
    for (std::size_t i = 0; i < numInputs; ++i)
        ptrs.push_back("in" + std::to_string(i));
    ptrs.push_back("out");
    return ptrs;
}

} // namespace

std::string
generateWalkKernelC(const AccessWalkPlan &plan, CombineKind combine,
                    std::size_t numInputs,
                    const std::string &description,
                    const std::vector<DataType> &operandDtypes)
{
    require(plan.operands.size() == numInputs + 1,
            "generateWalkKernelC: operand/input count mismatch");
    const EmitTypes types = emitTypesFor(operandDtypes, numInputs);
    CWriter w;
    emitPrologue(w, "affine walk", description, false, types);
    emitOperandPointers(w, types);
    emitAffineNest(
        w, plan, "r",
        accumulateBody(combine, types, inputPtrNames(numInputs)));
    w.close();
    return w.out.str();
}

std::string
generateDirectKernelC(const ExecPlan &plan,
                      const std::string &description)
{
    require(plan.compiled(),
            "generateDirectKernelC on an uncompiled plan: ",
            plan.fallbackReason());
    const std::size_t nin = plan.numInputs();
    const EmitTypes types = emitTypesFor(plan.operandDtypes(), nin);
    CWriter w;
    emitPrologue(w, "mapped direct", description, false, types);
    emitOperandPointers(w, types);

    std::vector<const ExecPlan::Operand *> ops;
    for (std::size_t m = 0; m < nin; ++m)
        ops.push_back(&plan.directOperands()[m]);
    ops.push_back(&plan.directOperands().back());
    emitMappedNest(
        w, plan, ops, "d",
        accumulateBody(plan.combine(), types, inputPtrNames(nin)));
    w.close();
    return w.out.str();
}

std::string
generatePackedKernelC(const ExecPlan &plan,
                      const std::string &description)
{
    require(plan.compiled(),
            "generatePackedKernelC on an uncompiled plan: ",
            plan.fallbackReason());
    const std::size_t nin = plan.numInputs();
    const auto &packed = plan.packedOperands();
    const auto &sizes = plan.packedSizes();
    const EmitTypes types = emitTypesFor(plan.operandDtypes(), nin);

    // Stream element type: int32_t for the exact quantized
    // discipline (inputs widen on pack), float otherwise (bf16
    // decodes on pack) — exactly the host engines' packed streams.
    const bool intDot = types.kind == quant::KernelSemantics::IntDot;
    const std::string streamTy = intDot ? "int32_t" : "float";
    EmitTypes streamTypes;
    streamTypes.kind = types.kind;
    streamTypes.inLanes.assign(
        nin, intDot ? StorageLane::I32 : StorageLane::F32);
    streamTypes.outLane =
        intDot ? StorageLane::I32 : StorageLane::F32;

    CWriter w;
    emitPrologue(w, "mapped packed", description, true, types);
    emitOperandPointers(w, types);

    // calloc'd packed tile streams: padding slots stay zero, exactly
    // like the interpreter's sweep.
    std::vector<std::string> pk;
    for (std::size_t m = 0; m < packed.size(); ++m) {
        const std::string name = "pk" + std::to_string(m);
        const std::int64_t sz = std::max<std::int64_t>(sizes[m], 1);
        w.line(streamTy + " *restrict " + name + " = (" + streamTy +
               " *)calloc(" + lit(sz) + ", sizeof(" + streamTy +
               "));");
        w.line("if (!" + name + ") abort();");
        pk.push_back(name);
    }

    // Stage A: pack each input's valid software points into its tile
    // stream, converting to the stream type (bf16 widens to float,
    // 8-bit lanes widen to int32). Operand pairs: [source, packed
    // destination].
    w.line("/* stage A: pack inputs */");
    {
        std::vector<const ExecPlan::Operand *> ops;
        for (std::size_t m = 0; m < nin; ++m) {
            ops.push_back(&plan.directOperands()[m]);
            ops.push_back(&packed[m]);
        }
        emitMappedNest(
            w, plan, ops, "A",
            [&](CWriter &ww, const std::vector<std::string> &a) {
                for (std::size_t m = 0; m < nin; ++m) {
                    std::string src = "in" + std::to_string(m) + "[" +
                                      a[2 * m] + "]";
                    if (types.inLanes[m] == StorageLane::BF16)
                        src = "amos_bf16_to_f32(" + src + ")";
                    else if (intDot)
                        src = "(int32_t)" + src;
                    ww.line(pk[m] + "[" + a[2 * m + 1] + "] = " + src +
                            ";");
                }
            });
    }

    // Stage B: the intrinsic compute sweep, purely affine over the
    // packed streams.
    w.line("/* stage B: compute on packed streams */");
    {
        std::vector<std::string> ptrs(pk.begin(),
                                      pk.begin() +
                                          static_cast<long>(nin));
        ptrs.push_back(pk.back());
        emitAffineNest(
            w, plan.stageB(), "B",
            accumulateBody(plan.combine(), streamTypes, ptrs));
    }

    // Stage C: unpack the output stream back to the software layout.
    w.line("/* stage C: unpack output */");
    {
        std::vector<const ExecPlan::Operand *> ops = {
            &packed.back(), &plan.directOperands().back()};
        emitMappedNest(
            w, plan, ops, "C",
            [&](CWriter &ww, const std::vector<std::string> &a) {
                ww.line("out[" + a[1] + "] = " + pk.back() + "[" +
                        a[0] + "];");
            });
    }

    for (const auto &name : pk)
        w.line("free(" + name + ");");
    w.close();
    return w.out.str();
}

} // namespace amos
