/**
 * @file
 * Native lowering of compiled execution plans: turn the stride-walk
 * engine's precomputed tables (tensor/access_walk.hh,
 * mapping/exec_plan.hh) into a self-contained C translation unit the
 * JIT tier compiles at -O3 and dlopens.
 *
 * Unlike generateC (codegen.hh), which emits the *structural* kernel
 * of a mapping for human inspection and compile-and-run verification,
 * these emitters are an execution backend: every loop bound, stride,
 * and base address is baked in as a constant, operand pointers are
 * restrict-qualified, and partial flat addresses are hoisted out of
 * inner loops — so the system compiler can strength-reduce and
 * auto-vectorize the inner loops. Loop order is exactly the
 * stride-walk engine's (which is the interpreter's), so accumulation
 * order — and therefore every floating-point bit — is identical to
 * the other two tiers.
 *
 * All kernels share the exported signature
 *
 *     void amos_exec_kernel(const void *const *inputs,
 *                           void *output);
 *
 * where each pointer's element type is the operand's storage lane
 * (tensor/dtype.hh): float for f16/f32, uint16_t raw bits for bf16,
 * int8_t/uint8_t for the 8-bit lanes, int32_t for exact quantized
 * accumulators. Integer kernels accumulate through an int64
 * intermediate with a wrapping cast back to int32 — the same exact
 * discipline as quant::intDotStep — so every engine's int8 result is
 * bit-identical. bf16 operands are widened to float on each load via
 * an emitted helper; bf16 accumulation is never emitted (it is
 * rejected at classification, see quant/semantics.hh).
 */

#ifndef AMOS_CODEGEN_EXEC_C_HH
#define AMOS_CODEGEN_EXEC_C_HH

#include <string>
#include <vector>

#include "mapping/exec_plan.hh"
#include "tensor/access_walk.hh"
#include "tensor/computation.hh"

namespace amos {

/** Exported symbol of every jitted exec kernel. */
inline constexpr const char *kExecKernelSymbol = "amos_exec_kernel";

/** C function-pointer type of a jitted exec kernel. */
using ExecKernelFn = void (*)(const void *const *, void *);

/**
 * Lower a pure affine walk nest — the reference executor's loop
 * nest — to C. `numInputs` operands of `plan` are inputs, the last
 * is the accumulated output. `operandDtypes` gives the declared
 * dtype of each operand, inputs first, output last (an empty vector
 * means all-f32); the combination must be one the classifier admits
 * (quant/semantics.hh). `description` becomes a header comment (and
 * thereby part of the kernel's content hash).
 */
std::string
generateWalkKernelC(const AccessWalkPlan &plan, CombineKind combine,
                    std::size_t numInputs,
                    const std::string &description,
                    const std::vector<DataType> &operandDtypes = {});

/**
 * Lower a compiled ExecPlan's direct path (outer axes x per-group
 * tile counters with padding clamps and digit decode). Requires
 * plan.compiled().
 */
std::string generateDirectKernelC(const ExecPlan &plan,
                                  const std::string &description);

/**
 * Lower a compiled ExecPlan's packed pipeline: calloc'd tile
 * streams, pack loops, the pure affine compute stage, and the
 * masked unpack — one translation unit. Requires plan.compiled().
 */
std::string generatePackedKernelC(const ExecPlan &plan,
                                  const std::string &description);

} // namespace amos

#endif // AMOS_CODEGEN_EXEC_C_HH
