/**
 * @file
 * Native lowering of compiled execution plans: turn the stride-walk
 * engine's precomputed tables (tensor/access_walk.hh,
 * mapping/exec_plan.hh) into a self-contained C translation unit the
 * JIT tier compiles at -O3 and dlopens.
 *
 * Unlike generateC (codegen.hh), which emits the *structural* kernel
 * of a mapping for human inspection and compile-and-run verification,
 * these emitters are an execution backend: every loop bound, stride,
 * and base address is baked in as a constant, operand pointers are
 * restrict-qualified, and partial flat addresses are hoisted out of
 * inner loops — so the system compiler can strength-reduce and
 * auto-vectorize the inner loops. Loop order is exactly the
 * stride-walk engine's (which is the interpreter's), so accumulation
 * order — and therefore every floating-point bit — is identical to
 * the other two tiers.
 *
 * All kernels share the exported signature
 *
 *     void amos_exec_kernel(const float *const *inputs,
 *                           float *output);
 */

#ifndef AMOS_CODEGEN_EXEC_C_HH
#define AMOS_CODEGEN_EXEC_C_HH

#include <string>

#include "mapping/exec_plan.hh"
#include "tensor/access_walk.hh"
#include "tensor/computation.hh"

namespace amos {

/** Exported symbol of every jitted exec kernel. */
inline constexpr const char *kExecKernelSymbol = "amos_exec_kernel";

/** C function-pointer type of a jitted exec kernel. */
using ExecKernelFn = void (*)(const float *const *, float *);

/**
 * Lower a pure affine walk nest — the reference executor's loop
 * nest — to C. `numInputs` operands of `plan` are inputs, the last
 * is the accumulated output. `description` becomes a header comment
 * (and thereby part of the kernel's content hash).
 */
std::string generateWalkKernelC(const AccessWalkPlan &plan,
                                CombineKind combine,
                                std::size_t numInputs,
                                const std::string &description);

/**
 * Lower a compiled ExecPlan's direct path (outer axes x per-group
 * tile counters with padding clamps and digit decode). Requires
 * plan.compiled().
 */
std::string generateDirectKernelC(const ExecPlan &plan,
                                  const std::string &description);

/**
 * Lower a compiled ExecPlan's packed pipeline: calloc'd tile
 * streams, pack loops, the pure affine compute stage, and the
 * masked unpack — one translation unit. Requires plan.compiled().
 */
std::string generatePackedKernelC(const ExecPlan &plan,
                                  const std::string &description);

} // namespace amos

#endif // AMOS_CODEGEN_EXEC_C_HH
