/**
 * @file
 * Code generation backend: lower a mapped, scheduled kernel into a
 * self-contained, compilable C source file.
 *
 * The original AMOS emits CUDA/LLVM through TVM; without a GPU this
 * backend emits portable C with a scalar emulation of the intrinsic,
 * preserving the *structure* the mapping dictates:
 *
 *   - packing loops that stage every operand into the tiled layout
 *     of the memory abstraction (base-address + stride expressions,
 *     zero-filled trailing padding),
 *   - the outer loop nest over unmapped iterations and tile
 *     quotients, annotated with the schedule's block/warp bindings,
 *   - one intrinsic call per tile, emulated as the scalar loops of
 *     the compute abstraction over packed tiles,
 *   - masked unpacking of the output accumulators.
 *
 * The emitted kernel has the signature
 *     void <name>(const float **inputs, float *output);
 * and is verified end to end in tests by compiling it with the host
 * compiler, loading it with dlopen, and comparing against the
 * reference interpreter.
 */

#ifndef AMOS_CODEGEN_CODEGEN_HH
#define AMOS_CODEGEN_CODEGEN_HH

#include <string>

#include "mapping/mapping.hh"
#include "schedule/schedule.hh"

namespace amos {

/** Options for the C backend. */
struct CodegenOptions
{
    /** Exported (extern "C") symbol name of the kernel. */
    std::string kernelName = "amos_kernel";

    /** Emit explanatory comments (mapping, schedule, shapes). */
    bool comments = true;
};

/**
 * Generate a complete C translation unit implementing the mapped
 * kernel. Panics if the plan is invalid.
 */
std::string generateC(const MappingPlan &plan, const Schedule &sched,
                      const CodegenOptions &options = {});

} // namespace amos

#endif // AMOS_CODEGEN_CODEGEN_HH
