#include "codegen.hh"

#include <sstream>

#include "ir/affine.hh"
#include "mapping/verify_bounds.hh"
#include "support/logging.hh"
#include "support/str_utils.hh"

namespace amos {

namespace {

/** Flattened row-major address expression of a software access. */
Expr
flatAddressExpr(const TensorDecl &decl,
                const std::vector<Expr> &indices)
{
    auto strides = decl.strides();
    Expr addr(std::int64_t{0});
    for (std::size_t d = 0; d < indices.size(); ++d)
        addr = addr + indices[d] * Expr(strides[d]);
    return addr;
}

/** C identifier for a software iterator. */
std::string
iterName(const TensorComputation &comp, std::size_t s)
{
    return "s_" + comp.iters()[s].name();
}

/**
 * Render an Expr as C, mapping every VarNode to its iterator's C
 * identifier. All index values are non-negative, so C's `/` and `%`
 * agree with floordiv/floormod.
 */
std::string
renderExpr(const TensorComputation &comp, const Expr &expr)
{
    Expr rewritten = expr;
    std::unordered_map<const VarNode *, Expr> renames;
    for (std::size_t s = 0; s < comp.numIters(); ++s)
        renames[comp.iters()[s].var.node()] =
            Expr(Var(iterName(comp, s)));
    rewritten = substitute(expr, renames);
    return exprToString(rewritten);
}

/** Emit `for (long v = 0; v < extent; ++v) {`. */
void
openLoop(std::ostringstream &out, const std::string &indent,
         const std::string &var, std::int64_t extent,
         const std::string &note = "")
{
    out << indent << "for (long " << var << " = 0; " << var << " < "
        << extent << "; ++" << var << ") {" << note << "\n";
}

} // namespace

std::string
generateC(const MappingPlan &plan, const Schedule &sched,
          const CodegenOptions &options)
{
    require(plan.valid(), "generateC: invalid mapping plan");
    auto bounds = verifyPlanBounds(plan);
    require(bounds.ok, "generateC: plan fails static bounds "
            "verification: ", bounds.failure);
    const auto &comp = plan.computation();
    const auto &intr = plan.intrinsic().compute;
    const auto &operands = plan.operands();
    const auto &axes = plan.outerAxes();
    require(sched.axes.size() == axes.size(),
            "generateC: schedule shape mismatch");

    auto phys = plan.physicalComputeExprs();

    std::ostringstream out;
    if (options.comments) {
        out << "/* " << comp.name() << " via " << intr.name()
            << "\n * mapping: "
            << plan.mapping().signature(comp) << "\n * compute:  "
            << plan.computeMappingString() << "\n * schedule: "
            << sched.toString() << "\n */\n";
    }
    out << "#include <stdlib.h>\n#include <string.h>\n\n";

    // --- Scalar emulation of one intrinsic call over packed tiles.
    out << "static void intrinsic_tile(";
    for (std::size_t m = 0; m < operands.size(); ++m) {
        bool is_dst = m + 1 == operands.size();
        out << (is_dst ? "float *dst" : "const float *src")
            << (is_dst ? std::string()
                       : std::to_string(m + 1))
            << (is_dst ? ")\n{\n" : ", ");
    }
    for (std::size_t k = 0; k < intr.numIters(); ++k) {
        out << std::string(4 * (k + 1), ' ') << "for (long "
            << intr.iters()[k].name << " = 0; "
            << intr.iters()[k].name << " < "
            << intr.iters()[k].extent << "; ++"
            << intr.iters()[k].name << ")\n";
    }
    auto tile_offset = [&](const IntrinsicOperand &op) {
        std::string offset = "0";
        for (auto k : op.iterIndices)
            offset = "(" + offset + " * " +
                     std::to_string(intr.iters()[k].extent) + " + " +
                     intr.iters()[k].name + ")";
        return offset;
    };
    out << std::string(4 * (intr.numIters() + 1), ' ');
    out << "dst[" << tile_offset(intr.dst()) << "] += ";
    switch (comp.combine()) {
      case CombineKind::MultiplyAdd:
        out << "src1[" << tile_offset(intr.srcs()[0]) << "] * src2["
            << tile_offset(intr.srcs()[1]) << "];\n";
        break;
      case CombineKind::SumReduce:
        out << "src1[" << tile_offset(intr.srcs()[0]) << "];\n";
        break;
    }
    out << "}\n\n";

    // --- The kernel.
    out << "void " << options.kernelName
        << "(const float **inputs, float *output)\n{\n";

    // Packed buffers (calloc: trailing padding must read as zero).
    for (std::size_t m = 0; m < operands.size(); ++m) {
        const auto &op = operands[m];
        out << "    float *packed" << m << " = (float *)calloc("
            << op.numTiles * op.tileElems << ", sizeof(float));";
        if (options.comments)
            out << " /* " << op.name << ": " << op.numTiles
                << " tiles x " << op.tileElems << " */";
        out << "\n";
    }
    out << "\n";

    // Stage 1: pack the inputs over the full software domain.
    if (options.comments)
        out << "    /* stage inputs into the tiled layout (memory"
               " mapping) */\n";
    std::string indent = "    ";
    for (std::size_t s = 0; s < comp.numIters(); ++s) {
        openLoop(out, indent, iterName(comp, s),
                 comp.iters()[s].extent);
        indent += "    ";
    }
    for (std::size_t m = 0; m < comp.inputs().size(); ++m) {
        const auto &op = operands[m];
        const auto &in = comp.inputs()[m];
        Expr offset(std::int64_t{0});
        for (auto k : op.intrinsicIters)
            offset = offset * Expr(intr.iters()[k].extent) + phys[k];
        out << indent << "packed" << m << "["
            << renderExpr(comp, op.baseAddress + offset)
            << "] = inputs[" << m << "]["
            << renderExpr(comp, flatAddressExpr(in.decl, in.indices))
            << "];\n";
    }
    for (std::size_t s = comp.numIters(); s-- > 0;) {
        indent.resize(indent.size() - 4);
        out << indent << "}\n";
    }
    out << "\n";

    // Stage 2: outer loop nest over the axes, one intrinsic call per
    // tile. Tile bases are flattened dependent-axis coordinates.
    if (options.comments)
        out << "    /* tiled compute (outer axes x intrinsic"
               " calls) */\n";
    indent = "    ";
    for (std::size_t a = 0; a < axes.size(); ++a) {
        std::string note;
        if (options.comments) {
            if (sched.axes[a].blockFactor > 1)
                note += " /* bind blockIdx x" +
                        std::to_string(sched.axes[a].blockFactor) +
                        " */";
            if (sched.axes[a].warpFactor > 1)
                note += " /* bind warpIdx x" +
                        std::to_string(sched.axes[a].warpFactor) +
                        " */";
        }
        openLoop(out, indent, "ax" + std::to_string(a),
                 axes[a].extent, note);
        indent += "    ";
    }
    auto axis_base = [&](const MappingPlan::OperandInfo &op) {
        // Accumulate from the innermost dependent axis outwards.
        std::vector<std::string> terms;
        std::int64_t running = op.tileElems;
        for (std::size_t pos = op.dependentAxes.size(); pos-- > 0;) {
            std::size_t a = op.dependentAxes[pos];
            terms.push_back("ax" + std::to_string(a) + " * " +
                            std::to_string(running));
            running *= axes[a].extent;
        }
        if (terms.empty())
            return std::string("0");
        return join(terms, " + ");
    };
    out << indent << "intrinsic_tile(";
    for (std::size_t m = 0; m < operands.size(); ++m) {
        out << "packed" << m << " + (" << axis_base(operands[m])
            << ")";
        out << (m + 1 < operands.size() ? ", " : ");\n");
    }
    for (std::size_t a = axes.size(); a-- > 0;) {
        indent.resize(indent.size() - 4);
        out << indent << "}\n";
    }
    out << "\n";

    // Stage 3: masked unpack of the output.
    if (options.comments)
        out << "    /* unpack the accumulator (masked store) */\n";
    const auto &dst_op = operands.back();
    indent = "    ";
    for (std::size_t s = 0; s < comp.numIters(); ++s) {
        // Reduction iterators do not address the output: fix at 0.
        if (comp.iters()[s].kind == IterKind::Reduction) {
            out << indent << "{ const long " << iterName(comp, s)
                << " = 0;\n";
            indent += "    ";
            continue;
        }
        openLoop(out, indent, iterName(comp, s),
                 comp.iters()[s].extent);
        indent += "    ";
    }
    Expr dst_offset(std::int64_t{0});
    for (auto k : dst_op.intrinsicIters)
        dst_offset =
            dst_offset * Expr(intr.iters()[k].extent) + phys[k];
    out << indent << "output["
        << renderExpr(comp,
                      flatAddressExpr(comp.output(),
                                      comp.outputIndices()))
        << "] = packed" << operands.size() - 1 << "["
        << renderExpr(comp, dst_op.baseAddress + dst_offset)
        << "];\n";
    for (std::size_t s = comp.numIters(); s-- > 0;) {
        indent.resize(indent.size() - 4);
        out << indent << "}\n";
    }
    out << "\n";
    for (std::size_t m = 0; m < operands.size(); ++m)
        out << "    free(packed" << m << ");\n";
    out << "}\n";
    return out.str();
}

} // namespace amos
