#include "simulator.hh"

#include <algorithm>
#include <cmath>
#include <limits>

#include "support/logging.hh"
#include "support/math_utils.hh"
#include "support/str_utils.hh"
#include "support/trace.hh"

namespace amos {

namespace {

/**
 * Effective global-load bytes of one block after coalescing: staging
 * traffic whose contiguous runs are shorter than a memory transaction
 * wastes part of every transaction. The penalty is softened (square
 * root) because staging loops partially recover locality through the
 * cache hierarchy, and capped at 4x.
 */
double
effectiveGlobalLoadBytes(const KernelProfile &prof)
{
    double total = 0.0;
    for (const auto &op : prof.operands) {
        if (op.isOutput)
            continue;
        double bytes = static_cast<double>(op.tilesPerBlock) *
                       op.tileBytes;
        double elems_per_txn = 32.0 / 2.0; // f16-dominant tiles
        double run = static_cast<double>(
            std::max<std::int64_t>(1, op.contiguousRun));
        double waste =
            std::sqrt(elems_per_txn / std::min(run, elems_per_txn));
        waste = std::min(waste, 4.0);
        total += bytes * waste;
    }
    return total;
}

} // namespace

std::string
SimResult::toString() const
{
    std::string out = "sim{cycles=" + fmtDouble(cycles, 0);
    out += ", ms=" + fmtDouble(milliseconds, 4);
    out += ", blocks/core=" + std::to_string(activeBlocksPerCore);
    out += ", waves=" + std::to_string(fullWaves) +
           (tailWave ? "+tail" : "");
    out += ", peak=" + fmtDouble(peakFraction * 100.0, 1) + "%}";
    return out;
}

SimResult
simulateKernel(const KernelProfile &prof, const HardwareSpec &hw)
{
    TraceSpan span("sim.measure", "sim");
    SimResult res;
    if (!prof.valid()) {
        res.schedulable = false;
        res.cycles = std::numeric_limits<double>::infinity();
        res.milliseconds = res.cycles;
        return res;
    }

    // ---- Occupancy: how many blocks are resident per core. ----
    int blocks_by_shared =
        prof.sharedBytesPerBlock > 0
            ? static_cast<int>(hw.shared.capacityBytes /
                               prof.sharedBytesPerBlock)
            : hw.maxBlocksPerCore;
    int blocks_by_warps = static_cast<int>(std::max<std::int64_t>(
        1, (4LL * hw.subcoresPerCore) / prof.warpsPerBlock));
    res.activeBlocksPerCore = std::max(
        1, std::min({hw.maxBlocksPerCore, blocks_by_shared,
                     blocks_by_warps}));
    // Never more resident blocks than exist.
    res.activeBlocksPerCore = static_cast<int>(std::min<std::int64_t>(
        res.activeBlocksPerCore,
        std::max<std::int64_t>(1,
                               ceilDiv(prof.numBlocks, hw.numCores))));

    std::int64_t concurrent_blocks = std::min<std::int64_t>(
        prof.numBlocks,
        static_cast<std::int64_t>(res.activeBlocksPerCore) *
            hw.numCores);

    // ---- One block's pipeline stages. ----
    // Compute: warps time-share the sub-cores; unrolling slightly
    // improves issue efficiency (fewer loop-control bubbles).
    double issue_eff = 0.85 + 0.05 * std::min(prof.unrollDepth, 3);
    double call_rate = prof.intrinsicLatencyCycles /
                       prof.intrinsicUnitsPerSubcore;
    // Fused iteration groups pay div/mod address generation on the
    // scalar pipe for every staged tile (the Fig. 3h chains); the
    // analytic model ignores this, the hardware does not.
    double addr_cost = 0.7 * prof.addressTerms;
    double warp_compute = prof.serialCallsPerWarp *
                          (call_rate / issue_eff + addr_cost);
    // Shared->register traffic per warp, derated when the transfer
    // vector width underuses the banks.
    double vec_eff = 0.5 + 0.5 * std::min(prof.vectorLanes, 4) / 4.0;
    double shared_bw_per_subcore =
        hw.shared.readBytesPerCycle / hw.subcoresPerCore * vec_eff;
    double warp_shared_read =
        prof.sharedLoadBytesPerWarp / shared_bw_per_subcore;

    double warp_batches = static_cast<double>(
        ceilDiv(prof.warpsPerBlock, hw.subcoresPerCore));
    res.blockComputeCycles =
        warp_batches * std::max(warp_compute, warp_shared_read);

    // Loads: global bandwidth is shared by every concurrently
    // resident block on the chip, and strided staging wastes
    // transactions.
    double load_bytes = effectiveGlobalLoadBytes(prof);
    double global_bw_per_block =
        hw.global.readBytesPerCycle /
        static_cast<double>(std::max<std::int64_t>(1,
                                                   concurrent_blocks));
    res.blockLoadCycles = load_bytes / global_bw_per_block;

    double store_bw_per_block =
        hw.global.writeBytesPerCycle /
        static_cast<double>(std::max<std::int64_t>(1,
                                                   concurrent_blocks));
    res.blockStoreCycles =
        prof.globalStoreBytesPerBlock / store_bw_per_block;

    // Pipelined block latency: the slowest stage dominates, the other
    // stages are hidden — but only as well as the staging depth
    // allows (single buffering exposes half of the load time).
    double overlap = prof.stageDepth >= 2 ? 1.0 : 0.6;
    double hidden = std::max({res.blockComputeCycles,
                              res.blockLoadCycles,
                              res.blockStoreCycles});
    double exposed = (res.blockComputeCycles + res.blockLoadCycles +
                      res.blockStoreCycles - hidden) *
                     (1.0 - overlap);
    double block_cycles = hidden + exposed;

    // Ramp-up: the first serial iteration pays the full latency chain.
    res.rampCycles = prof.intrinsicLatencyCycles * 4.0 +
                     (prof.sharedBytesPerBlock > 0
                          ? prof.sharedBytesPerBlock /
                                hw.shared.writeBytesPerCycle
                          : 0.0);
    block_cycles += res.rampCycles;

    // ---- Wave scheduling over cores. ----
    res.fullWaves = prof.numBlocks / concurrent_blocks;
    res.tailWave = prof.numBlocks % concurrent_blocks != 0;
    // The tail wave has fewer blocks but still costs a (cheaper)
    // pass: approximate by its occupancy fraction.
    double tail_fraction = 0.0;
    if (res.tailWave) {
        std::int64_t tail_blocks = prof.numBlocks % concurrent_blocks;
        tail_fraction = 0.5 + 0.5 * static_cast<double>(tail_blocks) /
                                  static_cast<double>(
                                      concurrent_blocks);
    }
    double wave_count = static_cast<double>(res.fullWaves) +
                        tail_fraction;
    wave_count = std::max(wave_count, 1.0);

    res.cycles = wave_count * block_cycles + hw.launchOverheadCycles;
    res.milliseconds = cyclesToMs(res.cycles, hw);

    res.opsPerCycle = static_cast<double>(prof.usefulOps) / res.cycles;
    res.peakFraction = res.opsPerCycle / hw.peakOpsPerCycle();
    return res;
}

SimResult
simulateScalar(double flops, double bytes, const HardwareSpec &hw,
               double efficiency)
{
    require(efficiency > 0.0 && efficiency <= 1.0,
            "simulateScalar: efficiency must be in (0, 1], got ",
            efficiency);
    SimResult res;
    // 2 ops (mul+add) per lane per cycle at perfect efficiency; the
    // code-quality factor applies to achieved bandwidth as well
    // (uncoalesced or unvectorised code misses the roofline on both
    // axes).
    double peak_ops =
        2.0 * hw.scalarLanesPerCore * hw.numCores * efficiency;
    double compute_cycles = flops / peak_ops;
    double mem_cycles =
        bytes / (hw.global.readBytesPerCycle * efficiency);
    res.cycles = std::max(compute_cycles, mem_cycles) +
                 hw.launchOverheadCycles;
    res.milliseconds = cyclesToMs(res.cycles, hw);
    res.opsPerCycle = flops / res.cycles;
    res.peakFraction = res.opsPerCycle / hw.peakOpsPerCycle();
    res.activeBlocksPerCore = 1;
    res.fullWaves = 1;
    return res;
}

double
cyclesToMs(double cycles, const HardwareSpec &hw)
{
    return cycles / (hw.clockGhz * 1e6);
}

} // namespace amos
