/**
 * @file
 * Timing simulator for the 3-level spatial accelerator of Fig. 1a.
 *
 * This is the reproduction's stand-in for running on real silicon:
 * the "ground truth" the tuner measures against and the performance
 * model is validated against (Fig. 5). It is deterministic and
 * deliberately richer than the analytic model:
 *
 *  - occupancy: resident blocks per core limited by shared-memory
 *    footprint, the block cap, and warp slots;
 *  - integer wave quantisation with a partial tail wave;
 *  - pipeline ramp-up (stage latencies paid once per block);
 *  - global-memory coalescing: strided staging reads waste bus
 *    transactions proportionally to the operand's fast stride;
 *  - shared-memory bank pressure from vectorisation and unrolling;
 *  - kernel-launch overhead.
 *
 * None of these effects exist in the analytic model, which is what
 * makes the model-validation experiment meaningful.
 */

#ifndef AMOS_SIM_SIMULATOR_HH
#define AMOS_SIM_SIMULATOR_HH

#include <string>

#include "hw/hardware.hh"
#include "schedule/profile.hh"

namespace amos {

/** Outcome of simulating one kernel. */
struct SimResult
{
    double cycles = 0.0;
    double milliseconds = 0.0;

    /// @name Breakdown (per representative block/wave)
    /// @{
    double blockComputeCycles = 0.0;
    double blockLoadCycles = 0.0;
    double blockStoreCycles = 0.0;
    double rampCycles = 0.0;
    /// @}

    int activeBlocksPerCore = 0;
    std::int64_t fullWaves = 0;
    bool tailWave = false;

    /// Achieved useful throughput in scalar ops per cycle.
    double opsPerCycle = 0.0;
    /// Fraction of the accelerator's tensorized peak achieved.
    double peakFraction = 0.0;

    bool schedulable = true;

    std::string toString() const;
};

/** Simulate a lowered kernel on an accelerator. */
SimResult simulateKernel(const KernelProfile &prof,
                         const HardwareSpec &hw);

/**
 * Simulate an operator executed on the general-purpose scalar lanes
 * (the fallback compilers take when tensorization fails): a roofline
 * over scalar multiply-accumulate throughput and global bandwidth.
 *
 * @param flops Scalar operation count of the operator.
 * @param bytes Total global traffic (inputs + output, cold).
 * @param efficiency Fraction of scalar peak the generated code
 *        reaches (library-quality code ~0.6, naive ~0.25).
 */
SimResult simulateScalar(double flops, double bytes,
                         const HardwareSpec &hw,
                         double efficiency = 0.5);

/** Convenience: cycles -> milliseconds on this accelerator. */
double cyclesToMs(double cycles, const HardwareSpec &hw);

} // namespace amos

#endif // AMOS_SIM_SIMULATOR_HH
