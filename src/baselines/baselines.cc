#include "baselines.hh"

#include <algorithm>

#include "ir/affine.hh"
#include "support/logging.hh"
#include "support/math_utils.hh"

namespace amos {
namespace baselines {

namespace {

/** Select the compatible software iterations of one intrinsic iter. */
std::vector<std::size_t>
compatibleIters(const BitMatrix &compat, std::size_t k)
{
    std::vector<std::size_t> out;
    for (std::size_t s = 0; s < compat.cols(); ++s)
        if (compat.at(k, s))
            out.push_back(s);
    return out;
}

BaselineResult
fromSim(const std::string &name, const SimResult &sim,
        bool tensorized, const std::string &signature = "")
{
    BaselineResult res;
    res.baseline = name;
    res.tensorized = tensorized;
    res.cycles = sim.cycles;
    res.milliseconds = sim.milliseconds;
    res.mappingSignature = signature;
    return res;
}

/** Charge the eager-framework per-op dispatch cost. */
BaselineResult
withFrameworkOverhead(BaselineResult res, const HardwareSpec &hw)
{
    res.cycles += hw.frameworkOverheadCycles;
    res.milliseconds = cyclesToMs(res.cycles, hw);
    return res;
}

} // namespace

double
operatorBytes(const TensorComputation &comp)
{
    double bytes = static_cast<double>(comp.output().numBytes());
    for (const auto &in : comp.inputs())
        bytes += static_cast<double>(in.decl.numBytes());
    return bytes;
}

std::optional<MappingPlan>
buildFixedMapping(const TensorComputation &comp, const Intrinsic &intr,
                  FixedMapping rule)
{
    if (comp.inputs().size() != intr.compute.numSrcs() ||
        comp.combine() != intr.compute.combine())
        return std::nullopt;

    BitMatrix compat = compatibilityMatrix(comp, intr.compute);
    ComputeMapping mapping;
    mapping.groups.assign(intr.compute.numIters(), {});

    for (std::size_t k = 0; k < intr.compute.numIters(); ++k) {
        auto cands = compatibleIters(compat, k);
        if (cands.empty())
            continue; // padded to 1, as AMOS does
        bool reduction = intr.compute.iters()[k].reduction;
        switch (rule) {
          case FixedMapping::Im2col:
            // Everything compatible is fused (im2col flattening).
            mapping.groups[k] = cands;
            break;
          case FixedMapping::FuseHW:
            if (reduction) {
                // Channel only: the first compatible reduction iter.
                mapping.groups[k] = {cands.front()};
            } else {
                // Innermost two spatial dims (height x width); batch
                // and the like stay outer.
                std::size_t take = std::min<std::size_t>(
                    2, cands.size());
                mapping.groups[k].assign(cands.end() - take,
                                         cands.end());
            }
            break;
        }
    }

    MappingPlan plan(comp, intr, std::move(mapping));
    if (!plan.valid())
        return std::nullopt;
    return plan;
}

BaselineResult
scalarExecution(const TensorComputation &comp, const HardwareSpec &hw,
                double efficiency, const std::string &label)
{
    auto sim = simulateScalar(static_cast<double>(comp.flopCount()),
                              operatorBytes(comp), hw, efficiency);
    return fromSim(label, sim, false);
}

BaselineResult
libraryProxy(const TensorComputation &comp, const HardwareSpec &hw)
{
    // Libraries carry hand-written tensorized kernels for the
    // standard dense operators only.
    static const std::vector<std::string> kSupported = {
        "gemm", "gemv", "conv1d", "conv2d", "conv3d", "scan"};
    bool supported =
        std::find(kSupported.begin(), kSupported.end(),
                  comp.name()) != kSupported.end();

    if (supported) {
        auto plan = buildFixedMapping(comp, hw.primaryIntrinsic(),
                                      FixedMapping::Im2col);
        if (plan) {
            // Dense matrix kernels (CuBLAS) are exhaustively tuned
            // offline: give them a real schedule search. Convolution
            // kernels use the expert heuristic of the library's
            // algorithm chooser.
            bool blas = comp.name() == "gemm" ||
                        comp.name() == "gemv" ||
                        comp.name() == "scan";
            if (blas) {
                TuneOptions offline;
                offline.population = 20;
                offline.generations = 8;
                offline.measureTopK = 6;
                auto tuned = tuneWithMapping(*plan, hw, offline);
                if (tuned.tensorizable) {
                    BaselineResult res;
                    res.baseline = "library";
                    res.tensorized = true;
                    res.cycles = tuned.bestCycles;
                    res.mappingSignature = tuned.mappingSignature;
                    res.milliseconds =
                        cyclesToMs(res.cycles, hw);
                    return withFrameworkOverhead(res, hw);
                }
            }
            auto prof =
                lowerKernel(*plan, expertSchedule(*plan, hw), hw);
            auto sim = simulateKernel(prof, hw);
            if (sim.schedulable) {
                return withFrameworkOverhead(
                    fromSim("library", sim, true,
                            plan->mapping().signature(comp)),
                    hw);
            }
        }
    }
    // Exotic operators fall back to the library's scalar kernels,
    // which are far less tuned than the marquee GEMM/conv paths.
    return withFrameworkOverhead(
        scalarExecution(comp, hw, 0.25, "library"), hw);
}

BaselineResult
amosFixedMapping(const TensorComputation &comp, const HardwareSpec &hw,
                 FixedMapping rule, const TuneOptions &options)
{
    auto plan = buildFixedMapping(comp, hw.primaryIntrinsic(), rule);
    std::string label = rule == FixedMapping::Im2col ? "amos-fixM1"
                                                     : "amos-fixM2";
    if (!plan)
        return scalarExecution(comp, hw, 0.45, label);
    auto result = tuneWithMapping(*plan, hw, options);
    require(result.tensorizable, "amosFixedMapping: tuner failed");
    BaselineResult res;
    res.baseline = label;
    res.tensorized = true;
    res.cycles = result.bestCycles;
    res.milliseconds = cyclesToMs(result.bestCycles, hw);
    res.mappingSignature = result.mappingSignature;
    return res;
}

BaselineResult
unitProxy(const TensorComputation &comp, const HardwareSpec &hw)
{
    // UNIT's template: fuse_hw mapping, schedule fixed by the
    // template (expert heuristic, no tuning).
    auto plan = buildFixedMapping(comp, hw.primaryIntrinsic(),
                                  FixedMapping::FuseHW);
    if (!plan)
        return scalarExecution(comp, hw, 0.5, "unit");
    auto prof = lowerKernel(*plan, expertSchedule(*plan, hw), hw);
    auto sim = simulateKernel(prof, hw);
    if (!sim.schedulable)
        return scalarExecution(comp, hw, 0.5, "unit");
    return fromSim("unit", sim, true,
                   plan->mapping().signature(comp));
}

bool
isChannelsLast(const TensorComputation &comp)
{
    // Convolution-shaped: two 4-D inputs and a 4-D output.
    if (comp.inputs().size() != 2 ||
        comp.inputs()[0].decl.ndim() != 4 ||
        comp.inputs()[1].decl.ndim() != 4 ||
        comp.output().ndim() != 4)
        return false;
    // Channels-last image: the *last* image index is a single pure
    // reduction iterator (the input channel).
    const auto &image_last = comp.inputs()[0].indices.back();
    auto vars = collectVars(image_last);
    if (vars.size() != 1)
        return false;
    bool image_last_is_reduction = false;
    for (const auto &iv : comp.iters())
        if (iv.var.node() == vars.front())
            image_last_is_reduction =
                iv.kind == IterKind::Reduction;
    if (!image_last_is_reduction)
        return false;
    // Channels-last output: its last index matches the weight's last
    // index (the output channel, RSCK weights).
    const auto &out_last = comp.outputIndices().back();
    const auto &w_last = comp.inputs()[1].indices.back();
    auto ov = collectVars(out_last);
    auto wv = collectVars(w_last);
    return ov.size() == 1 && wv.size() == 1 &&
           ov.front() == wv.front();
}

BaselineResult
autoTvmProxy(const TensorComputation &comp, const HardwareSpec &hw,
             bool expert_template)
{
    if (!expert_template && !isChannelsLast(comp)) {
        // The stock templates expect NHWC/RSCK layouts; anything
        // else misses the pattern and the generated code runs on
        // the scalar units (with AutoTVM's good scalar schedules).
        return scalarExecution(comp, hw, 0.55, "autotvm");
    }
    if (!expert_template) {
        // Channels-last: the stock Tensor Core template fires, with
        // its fixed im2col-style mapping and a modest tuning budget.
        TuneOptions options;
        options.population = 12;
        options.generations = 5;
        options.measureTopK = 4;
        auto res = amosFixedMapping(comp, hw, FixedMapping::Im2col,
                                    options);
        res.baseline = "autotvm";
        return res;
    }
    // AutoTVM-Expert: a hand-added NCHW template with the im2col
    // mapping and a modest tuning budget.
    TuneOptions options;
    options.population = 12;
    options.generations = 5;
    options.measureTopK = 4;
    auto res = amosFixedMapping(comp, hw, FixedMapping::Im2col,
                                options);
    res.baseline = "autotvm-expert";
    return res;
}

BaselineResult
ansorProxy(const TensorComputation &comp, const HardwareSpec &hw)
{
    // Ansor has no code-generation rules for tensor intrinsics but
    // produces the best scalar schedules of the compared compilers.
    return scalarExecution(comp, hw, 0.7, "ansor");
}

bool
xlaPatternMatches(const TensorComputation &comp)
{
    const auto &iters = comp.iters();

    // Pattern 1: exact GEMM — three iterations (two spatial, one
    // reduction), all accesses single-variable, and a genuinely
    // two-dimensional problem (a matrix-vector collapse mismatches).
    if (iters.size() == 3 && comp.inputs().size() == 2) {
        int spatial = 0, reduction = 0;
        bool all_single_var = true;
        for (const auto &in : comp.inputs())
            for (const auto &idx : in.indices)
                all_single_var &= collectVars(idx).size() == 1 &&
                                  tryToAffine(idx).has_value();
        for (const auto &iv : iters) {
            spatial += iv.kind == IterKind::Spatial;
            reduction += iv.kind == IterKind::Reduction;
        }
        bool big_enough = true;
        for (const auto &iv : iters)
            big_enough &= iv.extent > 1;
        if (spatial == 2 && reduction == 1 && all_single_var &&
            big_enough && comp.inputs()[0].decl.ndim() == 2 &&
            comp.inputs()[1].decl.ndim() == 2)
            return true;
    }

    // Pattern 2: standard stride-1 NCHW 2D convolution — exactly
    // seven iterations, 4-D tensors, and unit stride on the spatial
    // access (strided/dilated variants fail the template).
    if (iters.size() == 7 && comp.inputs().size() == 2 &&
        comp.inputs()[0].decl.ndim() == 4 &&
        comp.inputs()[1].decl.ndim() == 4 &&
        comp.output().ndim() == 4) {
        // Height access: third index of the image must be p + r with
        // both coefficients 1 and a genuine kernel extent (1x1
        // convolutions take XLA's conv-to-matmul rewrite instead,
        // which fails on this layout).
        auto form = tryToAffine(comp.inputs()[0].indices[2]);
        if (form && form->terms().size() == 2) {
            bool unit = true;
            bool real_kernel = false;
            for (const auto &term : form->terms()) {
                unit &= term.coeff == 1;
                for (const auto &iv : iters) {
                    if (iv.var.node() == term.var &&
                        iv.kind == IterKind::Reduction)
                        real_kernel |= iv.extent > 1;
                }
            }
            if (unit && real_kernel)
                return true;
        }
    }
    return false;
}

BaselineResult
xlaProxy(const TensorComputation &comp, const HardwareSpec &hw)
{
    if (xlaPatternMatches(comp)) {
        auto res = libraryProxy(comp, hw);
        res.baseline = "xla";
        return res;
    }
    // Unmatched operators run on XLA's fused scalar kernels.
    auto res = scalarExecution(comp, hw, 0.6, "xla");
    return res;
}

} // namespace baselines
} // namespace amos
