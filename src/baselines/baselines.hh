/**
 * @file
 * Baseline compilers/mappers the paper compares against, rebuilt as
 * faithful proxies of their *mapping behaviour* (see DESIGN.md's
 * substitution table):
 *
 *  - Library proxy (CuDNN / CuBLAS / PyTorch): one fixed im2col
 *    mapping with an expert-chosen (untuned) schedule for the
 *    standard operators; falls back to the scalar units for anything
 *    exotic (depthwise/grouped/capsule/...).
 *  - AMOS-fixM1 (im2col) and AMOS-fixM2 (fuse_hw): AMOS's schedule
 *    tuner with the mapping pinned, exactly the Fig. 9 ablations.
 *  - UNIT proxy: fuse_hw template (no batch dimension in i1),
 *    template-fixed schedule exploration.
 *  - AutoTVM proxy: layout-gated — its hand-written templates only
 *    fire on the expected layout, otherwise CUDA-core fallback; the
 *    "Expert" variant adds the missing template (im2col, tuned).
 *  - Ansor proxy: no tensorization rules at all, but the best scalar
 *    schedules of the bunch.
 *  - XLA proxy: IR pattern matcher that accepts only exact GEMM and
 *    stride-1 standard convolutions (Table 2's mechanism).
 */

#ifndef AMOS_BASELINES_BASELINES_HH
#define AMOS_BASELINES_BASELINES_HH

#include <optional>
#include <string>

#include "explore/tuner.hh"
#include "hw/hardware.hh"
#include "tensor/computation.hh"

namespace amos {
namespace baselines {

/** Outcome of compiling one operator with one baseline. */
struct BaselineResult
{
    std::string baseline;
    bool tensorized = false;
    double cycles = 0.0;
    double milliseconds = 0.0;
    std::string mappingSignature; ///< empty when not tensorized
};

/**
 * Fixed-mapping rules used by templates and libraries.
 */
enum class FixedMapping
{
    /// im2col: fuse every compatible iteration into each intrinsic
    /// iteration (n,p,q -> i1; c,r,s -> r1 for C2D). CuDNN's choice,
    /// and the paper's AMOS-fixM1.
    Im2col,
    /// fuse_hw: only the output spatial dims feed i1 and only the
    /// channel feeds r1 (p,q -> i1; c -> r1). UNIT's template, and
    /// the paper's AMOS-fixM2.
    FuseHW,
};

/**
 * Build the pinned mapping a rule produces for a computation, or
 * nullopt when the rule cannot be instantiated (no valid mapping).
 */
std::optional<MappingPlan> buildFixedMapping(
    const TensorComputation &comp, const Intrinsic &intr,
    FixedMapping rule);

/** Library proxy (PyTorch / CuDNN / CuBLAS). */
BaselineResult libraryProxy(const TensorComputation &comp,
                            const HardwareSpec &hw);

/** AMOS with the mapping pinned to a rule (Fig. 9's fixM1/fixM2). */
BaselineResult amosFixedMapping(const TensorComputation &comp,
                                const HardwareSpec &hw,
                                FixedMapping rule,
                                const TuneOptions &options = {});

/** UNIT proxy: fuse_hw, batch never mapped, template schedule. */
BaselineResult unitProxy(const TensorComputation &comp,
                         const HardwareSpec &hw);

/**
 * Structural layout detector: true iff a convolution-shaped
 * computation stores channels last (NHWC image + RSCK weights) —
 * the layout AutoTVM's stock Tensor Core templates expect.
 */
bool isChannelsLast(const TensorComputation &comp);

/**
 * AutoTVM proxy. Its hand-written templates are layout-gated: they
 * fire on channels-last (NHWC) operators and fall back to the
 * scalar units otherwise (the Sec. 7.3 layout-sensitivity result).
 * @param expert_template When true, models "AutoTVM-Expert": a
 *        hand-added NCHW template (im2col mapping, schedule tuning
 *        with a modest budget) that removes the layout gate.
 */
BaselineResult autoTvmProxy(const TensorComputation &comp,
                            const HardwareSpec &hw,
                            bool expert_template = false);

/** Ansor proxy: scalar-only, but with strong scalar schedules. */
BaselineResult ansorProxy(const TensorComputation &comp,
                          const HardwareSpec &hw);

/**
 * XLA-style pattern matcher: true iff the computation structurally
 * matches one of the hand-written Tensor Core patterns (exact GEMM,
 * or standard stride-1 non-grouped convolution).
 */
bool xlaPatternMatches(const TensorComputation &comp);

/** XLA proxy: pattern-matched ops go to the library, rest scalar. */
BaselineResult xlaProxy(const TensorComputation &comp,
                        const HardwareSpec &hw);

/** Scalar execution of an operator on the general-purpose lanes. */
BaselineResult scalarExecution(const TensorComputation &comp,
                               const HardwareSpec &hw,
                               double efficiency,
                               const std::string &label);

/** Total cold global traffic of an operator (inputs + output). */
double operatorBytes(const TensorComputation &comp);

} // namespace baselines
} // namespace amos

#endif // AMOS_BASELINES_BASELINES_HH
