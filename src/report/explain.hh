/**
 * @file
 * Explainability layer: bottleneck attribution and explain reports.
 *
 * The analytic model (Sec. 5.3) already computes per-level L/R/W
 * terms for every candidate; this module turns them into a verdict a
 * human (or a dashboard) can act on: which resource bounds the tuned
 * winner at each memory level, where the kernel sits on the target's
 * roofline, how well the model's ranking agreed with the simulator
 * on this workload, and whether the genetic search converged. The
 * same "explain the schedule" surface auto-schedulers like TVM and
 * TensorIR expose for debugging tensorized programs.
 *
 * An ExplainReport is exported two ways: explainToJson() for
 * machines (amos_cli --explain-out, the serve protocol's "explain"
 * flag) and explainToText() as a self-contained markdown report.
 */

#ifndef AMOS_REPORT_EXPLAIN_HH
#define AMOS_REPORT_EXPLAIN_HH

#include <string>
#include <vector>

#include "amos/amos.hh"
#include "model/perf_model.hh"
#include "support/json.hh"

namespace amos {
namespace report {

/** The resource a kernel is bound by. */
enum class Bottleneck
{
    Compute,     ///< intrinsic issue pipeline
    SharedRead,  ///< shared-level load bandwidth
    GlobalRead,  ///< global-level load bandwidth
    GlobalWrite, ///< global store bandwidth
};

/** Wire name ("compute" | "shared_read" | ...). */
const char *bottleneckName(Bottleneck b);

/**
 * Four-bucket decomposition of the model's total-cycle estimate.
 *
 * The model's recurrence takes a max at every level, so the raw
 * L/R/W terms do not sum to anything meaningful. The attribution
 * instead splits totalCycles proportionally to the per-level terms:
 * block-level cycles across {compute, global read, global write},
 * and the compute share further across {intrinsic compute, shared
 * read} by the warp-level ratio. The four buckets sum to
 * totalCycles exactly (up to FP rounding), and the dominant bucket
 * is the classified bottleneck.
 */
struct CycleAttribution
{
    double computeCycles = 0.0;
    double sharedReadCycles = 0.0;
    double globalReadCycles = 0.0;
    double globalWriteCycles = 0.0;
    double totalCycles = 0.0;

    Bottleneck bottleneck = Bottleneck::Compute;
    /// Attributed share of the dominant bucket in [0, 1].
    double dominance = 0.0;
};

/** Attribute a model estimate (est.schedulable must hold). */
CycleAttribution attributeCycles(const ModelEstimate &est);

/**
 * One memory level's verdict: the raw competing terms of the model
 * recurrence and which of them limits the level.
 */
struct LevelVerdict
{
    std::string level; ///< "warp" | "block"
    Bottleneck bound = Bottleneck::Compute;
    double computeCycles = 0.0; ///< compute term at this level
    double readCycles = 0.0;    ///< read term at this level
    double writeCycles = 0.0;   ///< write term (block level only)
    double levelCycles = 0.0;   ///< max of the terms (= L_l / S_l)
};

/** Roofline coordinates of one kernel on one accelerator. */
struct RooflinePoint
{
    /// Useful scalar ops per byte of global traffic.
    double operationalIntensity = 0.0;
    /// Useful ops per cycle at the measured latency.
    double attainedOpsPerCycle = 0.0;
    /// The target's tensorized peak (flat roof).
    double peakOpsPerCycle = 0.0;
    /// Bandwidth roof at this intensity: OI x global read B/cycle.
    double bandwidthOpsPerCycle = 0.0;
    /// Intensity where the two roofs cross.
    double ridgeIntensity = 0.0;
    /// True when the kernel sits left of the ridge.
    bool memoryBound = false;
};

RooflinePoint rooflinePoint(const KernelProfile &prof,
                            const HardwareSpec &hw,
                            double measuredCycles);

/** Attribution of one candidate (the winner or a runner-up). */
struct CandidateExplain
{
    std::string role; ///< "winner" | "runner_up"
    std::size_t mappingIndex = 0;
    std::string mappingSignature;
    std::string intrinsicName;
    std::string schedule;
    double predictedCycles = 0.0;
    double measuredCycles = 0.0;
    /// Measured cycles relative to the winner's (1.0 = the winner).
    double slowdownVsWinner = 1.0;
    CycleAttribution attribution;
    std::vector<LevelVerdict> levels;
    RooflinePoint roofline;
};

/** Model-vs-simulator agreement on this workload's trace. */
struct ModelAgreement
{
    int traceSteps = 0;
    double pairwiseAccuracy = 1.0;
    double topFractionRecall = 1.0; ///< at the paper's 40% rate
    double geoMeanRelativeError = 1.0;
    double winnerPredictedCycles = 0.0;
    double winnerMeasuredCycles = 0.0;
    /// max(pred,meas)/min(pred,meas) on the winner alone.
    double winnerRelativeError = 1.0;
};

/** The complete explainability report for one compilation. */
struct ExplainReport
{
    std::string workload;  ///< computation name
    std::string hardware;  ///< accelerator name
    double flops = 0.0;    ///< useful scalar ops of the operator

    bool tensorized = false;
    bool usedScalarCode = false;
    double cycles = 0.0;
    double milliseconds = 0.0;
    double gflops = 0.0;

    std::size_t mappingsExplored = 0;
    int measurements = 0;

    /// Winner first, then up to three runners-up. Empty when the
    /// operator fell back to scalar code.
    std::vector<CandidateExplain> candidates;
    ModelAgreement agreement;
    std::vector<GenerationTelemetry> telemetry;
};

/**
 * Build the explain report for a compilation outcome. Re-lowers the
 * winner (and runners-up) through the analytic model — a few pure
 * function evaluations, no exploration.
 */
ExplainReport explainResult(const CompileResult &result,
                            const TensorComputation &comp,
                            const HardwareSpec &hw);

/** Machine-readable form (schema in docs/observability.md). */
Json explainToJson(const ExplainReport &report);

/** Self-contained human-readable markdown report. */
std::string explainToText(const ExplainReport &report);

} // namespace report
} // namespace amos

#endif // AMOS_REPORT_EXPLAIN_HH
