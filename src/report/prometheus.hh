/**
 * @file
 * Prometheus text exposition (format version 0.0.4) of the support
 * layer's MetricsRegistry and LatencyHistograms. Counters map to the
 * `counter` type with the conventional `_total` suffix, gauges to
 * `gauge`, and histograms to `summary` (pre-computed quantiles, not
 * cumulative buckets — the histogram keeps a bounded reservoir, so
 * summaries are the honest rendering). All series carry the `amos_`
 * namespace prefix and dotted metric names are flattened with
 * underscores: `serve.requests` becomes `amos_serve_requests_total`.
 */

#ifndef AMOS_REPORT_PROMETHEUS_HH
#define AMOS_REPORT_PROMETHEUS_HH

#include <string>
#include <utility>
#include <vector>

#include "support/histogram.hh"
#include "support/metrics.hh"

namespace amos {
namespace report {

/**
 * Sanitise a dotted metric name into a Prometheus series name:
 * prefix with "amos_" and replace every character outside
 * [a-zA-Z0-9_] with '_'.
 */
std::string prometheusName(const std::string &dotted);

/** A named latency histogram to expose as a summary. */
using NamedHistogram =
    std::pair<std::string, const LatencyHistogram *>;

/** A named sliding-window histogram to expose as gauge quantiles. */
using NamedWindow =
    std::pair<std::string, const SlidingWindowHistogram *>;

/**
 * Render a registry snapshot (plus optional histograms) in the
 * Prometheus text exposition format. Deterministic: series are
 * sorted by name within each section.
 *
 * Sanitisation can collide distinct dotted names (`a.b` and `a_b`
 * both become `amos_a_b`); the output stays valid exposition by
 * merging per family: colliding counters sum into one series (HELP
 * lists every source name) and for colliding gauges the
 * lexicographically-last dotted name wins. Windowed histograms are
 * exposed as *gauge*-typed quantile series (their values move with
 * the window, so the monotonic summary contract does not hold), plus
 * a companion `_count` gauge of windowed samples.
 */
std::string prometheusExposition(
    const MetricsRegistry &registry,
    const std::vector<NamedHistogram> &histograms = {},
    const std::vector<NamedWindow> &windows = {});

} // namespace report
} // namespace amos

#endif // AMOS_REPORT_PROMETHEUS_HH
