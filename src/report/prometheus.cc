#include "prometheus.hh"

#include <algorithm>
#include <cctype>
#include <sstream>

namespace amos {
namespace report {

namespace {

/** Shortest round-trip-safe rendering of a sample value. */
std::string
fmtValue(double v)
{
    std::ostringstream out;
    out.precision(17);
    out << v;
    std::string wide = out.str();
    // Prefer the shorter default rendering when it round-trips.
    std::ostringstream narrow;
    narrow << v;
    if (std::stod(narrow.str()) == v)
        return narrow.str();
    return wide;
}

void
emitSeries(std::string &out, const std::string &name,
           const char *type, const std::string &help)
{
    out += "# HELP " + name + " " + help + "\n";
    out += "# TYPE " + name + " " + type + "\n";
}

} // namespace

std::string
prometheusName(const std::string &dotted)
{
    std::string name = "amos_" + dotted;
    for (char &c : name) {
        bool ok = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
                  (c >= '0' && c <= '9') || c == '_';
        if (!ok)
            c = '_';
    }
    return name;
}

std::string
prometheusExposition(const MetricsRegistry &registry,
                     const std::vector<NamedHistogram> &histograms)
{
    std::string out;

    for (const auto &[dotted, value] : registry.counterValues()) {
        std::string name = prometheusName(dotted) + "_total";
        emitSeries(out, name, "counter",
                   "AMOS counter " + dotted);
        out += name + " " + std::to_string(value) + "\n";
    }

    for (const auto &[dotted, value] : registry.gaugeValues()) {
        std::string name = prometheusName(dotted);
        emitSeries(out, name, "gauge", "AMOS gauge " + dotted);
        out += name + " " + fmtValue(value) + "\n";
    }

    std::vector<NamedHistogram> sorted = histograms;
    std::sort(sorted.begin(), sorted.end(),
              [](const NamedHistogram &a, const NamedHistogram &b) {
                  return a.first < b.first;
              });
    for (const auto &[dotted, hist] : sorted) {
        if (hist == nullptr)
            continue;
        std::string name = prometheusName(dotted);
        emitSeries(out, name, "summary",
                   "AMOS latency summary " + dotted);
        for (double q : {0.5, 0.95, 0.99}) {
            out += name + "{quantile=\"" + fmtValue(q) + "\"} " +
                   fmtValue(hist->quantileMs(q)) + "\n";
        }
        double count = static_cast<double>(hist->count());
        out += name + "_sum " + fmtValue(hist->meanMs() * count) +
               "\n";
        out += name + "_count " + std::to_string(hist->count()) +
               "\n";
    }
    return out;
}

} // namespace report
} // namespace amos
