#include "prometheus.hh"

#include <algorithm>
#include <cctype>
#include <map>
#include <sstream>

namespace amos {
namespace report {

namespace {

/** Shortest round-trip-safe rendering of a sample value. */
std::string
fmtValue(double v)
{
    std::ostringstream out;
    out.precision(17);
    out << v;
    std::string wide = out.str();
    // Prefer the shorter default rendering when it round-trips.
    std::ostringstream narrow;
    narrow << v;
    if (std::stod(narrow.str()) == v)
        return narrow.str();
    return wide;
}

void
emitSeries(std::string &out, const std::string &name,
           const char *type, const std::string &help)
{
    out += "# HELP " + name + " " + help + "\n";
    out += "# TYPE " + name + " " + type + "\n";
}

} // namespace

std::string
prometheusName(const std::string &dotted)
{
    std::string name = "amos_" + dotted;
    for (char &c : name) {
        bool ok = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
                  (c >= '0' && c <= '9') || c == '_';
        if (!ok)
            c = '_';
    }
    return name;
}

std::string
prometheusExposition(const MetricsRegistry &registry,
                     const std::vector<NamedHistogram> &histograms,
                     const std::vector<NamedWindow> &windows)
{
    std::string out;

    // Merge counters whose dotted names sanitise to the same series
    // name ("a.b" and "a_b" both become amos_a_b): emitting the
    // family twice would be invalid exposition, so colliding
    // counters sum and HELP names every source. std::map keys are
    // sorted, so the merge (and the output order) is deterministic.
    std::map<std::string, std::pair<std::string, std::uint64_t>>
        counters;
    for (const auto &[dotted, value] : registry.counterValues()) {
        auto [it, inserted] = counters.emplace(
            prometheusName(dotted) + "_total",
            std::make_pair(dotted, value));
        if (!inserted) {
            it->second.first += " + " + dotted;
            it->second.second += value;
        }
    }
    for (const auto &[name, src] : counters) {
        emitSeries(out, name, "counter", "AMOS counter " + src.first);
        out += name + " " + std::to_string(src.second) + "\n";
    }

    // Gauges cannot be meaningfully summed; on collision the
    // lexicographically-last dotted name wins (map iteration order
    // makes the overwrite deterministic).
    std::map<std::string, std::pair<std::string, double>> gauges;
    for (const auto &[dotted, value] : registry.gaugeValues())
        gauges[prometheusName(dotted)] = {dotted, value};
    for (const auto &[name, src] : gauges) {
        emitSeries(out, name, "gauge", "AMOS gauge " + src.first);
        out += name + " " + fmtValue(src.second) + "\n";
    }

    std::vector<NamedHistogram> sorted = histograms;
    std::sort(sorted.begin(), sorted.end(),
              [](const NamedHistogram &a, const NamedHistogram &b) {
                  return a.first < b.first;
              });
    for (const auto &[dotted, hist] : sorted) {
        if (hist == nullptr)
            continue;
        std::string name = prometheusName(dotted);
        emitSeries(out, name, "summary",
                   "AMOS latency summary " + dotted);
        for (double q : {0.5, 0.95, 0.99}) {
            out += name + "{quantile=\"" + fmtValue(q) + "\"} " +
                   fmtValue(hist->quantileMs(q)) + "\n";
        }
        double count = static_cast<double>(hist->count());
        out += name + "_sum " + fmtValue(hist->meanMs() * count) +
               "\n";
        out += name + "_count " + std::to_string(hist->count()) +
               "\n";
    }

    // Windowed histograms: quantiles over the last windowSeconds,
    // typed as gauges because the values move with the window (a
    // summary's implied process-lifetime monotonicity would lie).
    std::vector<NamedWindow> sortedWindows = windows;
    std::sort(sortedWindows.begin(), sortedWindows.end(),
              [](const NamedWindow &a, const NamedWindow &b) {
                  return a.first < b.first;
              });
    for (const auto &[dotted, window] : sortedWindows) {
        if (window == nullptr)
            continue;
        std::string name = prometheusName(dotted);
        std::string span = fmtValue(window->windowSeconds());
        emitSeries(out, name, "gauge",
                   "AMOS windowed latency quantiles " + dotted +
                       " (last " + span + "s)");
        for (double q : {0.5, 0.95, 0.99}) {
            out += name + "{quantile=\"" + fmtValue(q) + "\"} " +
                   fmtValue(window->windowQuantileMs(q)) + "\n";
        }
        emitSeries(out, name + "_count", "gauge",
                   "AMOS windowed sample count " + dotted +
                       " (last " + span + "s)");
        out += name + "_count " +
               std::to_string(window->windowCount()) + "\n";
    }
    return out;
}

} // namespace report
} // namespace amos
