#include "explain.hh"

#include <algorithm>
#include <array>
#include <cmath>

#include "explore/stats.hh"
#include "support/str_utils.hh"

namespace amos {
namespace report {

namespace {

/** Hyphenated form for prose ("global-read-bound"). */
std::string
proseName(Bottleneck b)
{
    std::string name = bottleneckName(b);
    std::replace(name.begin(), name.end(), '_', '-');
    return name + "-bound";
}

std::vector<LevelVerdict>
levelVerdicts(const ModelEstimate &est)
{
    std::vector<LevelVerdict> levels;

    LevelVerdict warp;
    warp.level = "warp";
    warp.computeCycles = est.computeWarp;
    warp.readCycles = est.readShared;
    warp.levelCycles = std::max(est.computeWarp, est.readShared);
    warp.bound = est.readShared > est.computeWarp
                     ? Bottleneck::SharedRead
                     : Bottleneck::Compute;
    levels.push_back(std::move(warp));

    LevelVerdict block;
    block.level = "block";
    block.computeCycles = est.computeBlock;
    block.readCycles = est.readGlobal;
    block.writeCycles = est.writeGlobal;
    block.levelCycles = est.blockCycles;
    block.bound = Bottleneck::Compute;
    if (est.readGlobal > est.computeBlock &&
        est.readGlobal >= est.writeGlobal)
        block.bound = Bottleneck::GlobalRead;
    else if (est.writeGlobal > est.computeBlock &&
             est.writeGlobal > est.readGlobal)
        block.bound = Bottleneck::GlobalWrite;
    levels.push_back(std::move(block));
    return levels;
}

CandidateExplain
explainCandidate(const MappingPlan &plan, const Schedule &sched,
                 const TensorComputation &comp,
                 const HardwareSpec &hw, double measuredCycles)
{
    CandidateExplain cand;
    cand.mappingSignature = plan.mapping().signature(comp);
    cand.intrinsicName = plan.intrinsic().name();
    cand.schedule = sched.toString();
    auto prof = lowerKernel(plan, sched, hw);
    auto est = modelEstimate(prof, hw);
    cand.predictedCycles = est.totalCycles;
    cand.measuredCycles = measuredCycles;
    if (est.schedulable) {
        cand.attribution = attributeCycles(est);
        cand.levels = levelVerdicts(est);
    }
    cand.roofline = rooflinePoint(
        prof, hw,
        measuredCycles > 0 ? measuredCycles : est.totalCycles);
    return cand;
}

Json
attributionToJson(const CycleAttribution &a)
{
    Json out = Json::object();
    out.set("bottleneck", Json(bottleneckName(a.bottleneck)));
    out.set("dominance", Json(a.dominance));
    out.set("total_cycles", Json(a.totalCycles));
    out.set("compute_cycles", Json(a.computeCycles));
    out.set("shared_read_cycles", Json(a.sharedReadCycles));
    out.set("global_read_cycles", Json(a.globalReadCycles));
    out.set("global_write_cycles", Json(a.globalWriteCycles));
    return out;
}

Json
rooflineToJson(const RooflinePoint &r)
{
    Json out = Json::object();
    out.set("operational_intensity", Json(r.operationalIntensity));
    out.set("attained_ops_per_cycle", Json(r.attainedOpsPerCycle));
    out.set("peak_ops_per_cycle", Json(r.peakOpsPerCycle));
    out.set("bandwidth_ops_per_cycle",
            Json(r.bandwidthOpsPerCycle));
    out.set("ridge_intensity", Json(r.ridgeIntensity));
    out.set("memory_bound", Json(r.memoryBound));
    return out;
}

Json
candidateToJson(const CandidateExplain &c)
{
    Json out = Json::object();
    out.set("mapping_index",
            Json(static_cast<std::int64_t>(c.mappingIndex)));
    out.set("mapping_signature", Json(c.mappingSignature));
    out.set("intrinsic", Json(c.intrinsicName));
    out.set("schedule", Json(c.schedule));
    out.set("predicted_cycles", Json(c.predictedCycles));
    out.set("measured_cycles", Json(c.measuredCycles));
    out.set("slowdown_vs_winner", Json(c.slowdownVsWinner));
    out.set("attribution", attributionToJson(c.attribution));
    Json levels = Json::array();
    for (const auto &lv : c.levels) {
        Json level = Json::object();
        level.set("level", Json(lv.level));
        level.set("bound", Json(bottleneckName(lv.bound)));
        level.set("compute_cycles", Json(lv.computeCycles));
        level.set("read_cycles", Json(lv.readCycles));
        level.set("write_cycles", Json(lv.writeCycles));
        level.set("level_cycles", Json(lv.levelCycles));
        levels.push(std::move(level));
    }
    out.set("levels", std::move(levels));
    out.set("roofline", rooflineToJson(c.roofline));
    return out;
}

Json
telemetryRowToJson(const GenerationTelemetry &row)
{
    Json out = Json::object();
    out.set("generation", Json(row.generation));
    out.set("phase", Json(row.phase));
    out.set("population", Json(row.populationSize));
    out.set("distinct_mappings",
            Json(static_cast<std::int64_t>(row.distinctMappings)));
    out.set("distinct_genomes",
            Json(static_cast<std::int64_t>(row.distinctGenomes)));
    out.set("measured_new", Json(row.measuredNew));
    out.set("measured_reused", Json(row.measuredReused));
    out.set("best_predicted_cycles",
            Json(row.bestPredictedCycles));
    out.set("mean_predicted_cycles",
            Json(row.meanPredictedCycles));
    out.set("best_measured_cycles", Json(row.bestMeasuredCycles));
    out.set("mean_measured_cycles", Json(row.meanMeasuredCycles));
    return out;
}

} // namespace

const char *
bottleneckName(Bottleneck b)
{
    switch (b) {
    case Bottleneck::Compute:
        return "compute";
    case Bottleneck::SharedRead:
        return "shared_read";
    case Bottleneck::GlobalRead:
        return "global_read";
    case Bottleneck::GlobalWrite:
        return "global_write";
    }
    return "compute";
}

CycleAttribution
attributeCycles(const ModelEstimate &est)
{
    CycleAttribution a;
    a.totalCycles = est.totalCycles;

    // Block-level shares: compute (which carries the whole warp
    // level) vs global read vs global write.
    double tc = est.computeBlock;
    double tr = est.readGlobal;
    double tw = est.writeGlobal;
    double block_sum = tc + tr + tw;
    double compute_share = block_sum > 0 ? tc / block_sum : 1.0;

    // Warp-level split of the compute share: intrinsic issue vs
    // shared-memory loads.
    double warp_sum = est.computeWarp + est.readShared;
    double warp_compute =
        warp_sum > 0 ? est.computeWarp / warp_sum : 1.0;

    a.computeCycles = a.totalCycles * compute_share * warp_compute;
    a.sharedReadCycles =
        a.totalCycles * compute_share * (1.0 - warp_compute);
    a.globalReadCycles =
        block_sum > 0 ? a.totalCycles * tr / block_sum : 0.0;
    a.globalWriteCycles =
        block_sum > 0 ? a.totalCycles * tw / block_sum : 0.0;

    // Dominant bucket; ties resolve to the earlier bucket so the
    // verdict is always unique.
    std::array<std::pair<Bottleneck, double>, 4> buckets = {{
        {Bottleneck::Compute, a.computeCycles},
        {Bottleneck::SharedRead, a.sharedReadCycles},
        {Bottleneck::GlobalRead, a.globalReadCycles},
        {Bottleneck::GlobalWrite, a.globalWriteCycles},
    }};
    a.bottleneck = buckets[0].first;
    double top = buckets[0].second;
    for (const auto &[name, cycles] : buckets) {
        if (cycles > top) {
            top = cycles;
            a.bottleneck = name;
        }
    }
    a.dominance = a.totalCycles > 0 ? top / a.totalCycles : 1.0;
    return a;
}

RooflinePoint
rooflinePoint(const KernelProfile &prof, const HardwareSpec &hw,
              double measuredCycles)
{
    RooflinePoint r;
    double bytes =
        static_cast<double>(prof.numBlocks) *
        static_cast<double>(prof.globalLoadBytesPerBlock +
                            prof.globalStoreBytesPerBlock);
    double ops = static_cast<double>(prof.usefulOps);
    r.operationalIntensity = bytes > 0 ? ops / bytes : 0.0;
    r.attainedOpsPerCycle =
        measuredCycles > 0 ? ops / measuredCycles : 0.0;
    r.peakOpsPerCycle = hw.peakOpsPerCycle();
    double bw = hw.global.readBytesPerCycle;
    r.bandwidthOpsPerCycle = r.operationalIntensity * bw;
    r.ridgeIntensity = bw > 0 ? r.peakOpsPerCycle / bw : 0.0;
    r.memoryBound = r.operationalIntensity < r.ridgeIntensity;
    return r;
}

ExplainReport
explainResult(const CompileResult &result,
              const TensorComputation &comp, const HardwareSpec &hw)
{
    ExplainReport rep;
    rep.workload = comp.name();
    rep.hardware = hw.name;
    rep.flops = static_cast<double>(comp.flopCount());
    rep.tensorized = result.tensorized;
    rep.usedScalarCode = result.usedScalarCode;
    rep.cycles = result.cycles;
    rep.milliseconds = result.milliseconds;
    rep.gflops = result.gflops;
    rep.mappingsExplored = result.mappingsExplored;
    rep.measurements = result.measurements;
    rep.telemetry = result.tuning.telemetry;

    const TuneResult &tuned = result.tuning;
    if (result.tensorized && tuned.bestPlan) {
        auto winner = explainCandidate(*tuned.bestPlan,
                                       tuned.bestSchedule, comp, hw,
                                       tuned.bestCycles);
        winner.role = "winner";
        winner.mappingIndex = tuned.bestMappingIndex;
        winner.slowdownVsWinner = 1.0;
        rep.candidates.push_back(std::move(winner));

        for (const auto &up : tuned.runnersUp) {
            if (!up.plan)
                continue;
            auto cand = explainCandidate(*up.plan, up.schedule,
                                         comp, hw,
                                         up.measuredCycles);
            cand.role = "runner_up";
            cand.mappingIndex = up.mappingIndex;
            cand.slowdownVsWinner =
                tuned.bestCycles > 0
                    ? up.measuredCycles / tuned.bestCycles
                    : 1.0;
            rep.candidates.push_back(std::move(cand));
        }
    }

    rep.agreement.traceSteps =
        static_cast<int>(tuned.trace.size());
    rep.agreement.pairwiseAccuracy = pairwiseAccuracy(tuned.trace);
    rep.agreement.topFractionRecall =
        topFractionRecall(tuned.trace, 0.4);
    rep.agreement.geoMeanRelativeError =
        geoMeanRelativeError(tuned.trace);
    rep.agreement.winnerPredictedCycles = tuned.bestModelCycles;
    rep.agreement.winnerMeasuredCycles = tuned.bestCycles;
    if (tuned.bestModelCycles > 0 && tuned.bestCycles > 0) {
        double hi = std::max(tuned.bestModelCycles,
                             tuned.bestCycles);
        double lo = std::min(tuned.bestModelCycles,
                             tuned.bestCycles);
        rep.agreement.winnerRelativeError = hi / lo;
    }
    return rep;
}

Json
explainToJson(const ExplainReport &report)
{
    Json out = Json::object();
    out.set("workload", Json(report.workload));
    out.set("hardware", Json(report.hardware));
    out.set("flops", Json(report.flops));
    out.set("tensorized", Json(report.tensorized));
    out.set("used_scalar_code", Json(report.usedScalarCode));
    out.set("cycles", Json(report.cycles));
    out.set("milliseconds", Json(report.milliseconds));
    out.set("gflops", Json(report.gflops));
    out.set("mappings_explored",
            Json(static_cast<std::int64_t>(
                report.mappingsExplored)));
    out.set("measurements", Json(report.measurements));

    Json runners = Json::array();
    for (const auto &cand : report.candidates) {
        if (cand.role == "winner")
            out.set("winner", candidateToJson(cand));
        else
            runners.push(candidateToJson(cand));
    }
    out.set("runners_up", std::move(runners));

    Json agreement = Json::object();
    agreement.set("trace_steps",
                  Json(report.agreement.traceSteps));
    agreement.set("pairwise_accuracy",
                  Json(report.agreement.pairwiseAccuracy));
    agreement.set("top_40pct_recall",
                  Json(report.agreement.topFractionRecall));
    agreement.set("geo_mean_relative_error",
                  Json(report.agreement.geoMeanRelativeError));
    agreement.set("winner_predicted_cycles",
                  Json(report.agreement.winnerPredictedCycles));
    agreement.set("winner_measured_cycles",
                  Json(report.agreement.winnerMeasuredCycles));
    agreement.set("winner_relative_error",
                  Json(report.agreement.winnerRelativeError));
    out.set("model_agreement", std::move(agreement));

    Json telemetry = Json::array();
    for (const auto &row : report.telemetry)
        telemetry.push(telemetryRowToJson(row));
    out.set("telemetry", std::move(telemetry));
    return out;
}

std::string
explainToText(const ExplainReport &report)
{
    std::string out;
    out += "# AMOS explain report: " + report.workload + " on " +
           report.hardware + "\n\n";
    out += "latency " + fmtDouble(report.milliseconds, 4) +
           " ms (" + fmtDouble(report.cycles, 0) + " cycles, " +
           fmtDouble(report.gflops, 1) + " GFLOPS), " +
           std::to_string(report.mappingsExplored) +
           " mappings explored, " +
           std::to_string(report.measurements) +
           " measurements\n\n";

    if (!report.tensorized || report.candidates.empty()) {
        out += "## Verdict\n\nThe operator was **not tensorized**: "
               "no valid software-to-intrinsic mapping exists on "
               "this target, so the scalar fallback shipped. There "
               "is no mapping-level bottleneck to attribute.\n";
        return out;
    }

    const CandidateExplain &winner = report.candidates.front();
    const CycleAttribution &attr = winner.attribution;
    out += "## Verdict\n\nThe tuned kernel is **" +
           proseName(attr.bottleneck) + "**: " +
           fmtDouble(attr.dominance * 100.0, 1) + "% of the " +
           fmtDouble(attr.totalCycles, 0) +
           " modelled cycles are attributed to " +
           std::string(bottleneckName(attr.bottleneck)) + ".";
    if (report.usedScalarCode)
        out += " (AMOS shipped its scalar code anyway: the "
               "tensorized kernel lost to the scalar roofline.)";
    out += "\n\n";

    out += "## Cycle attribution (winner: mapping " +
           winner.mappingSignature + ", intrinsic " +
           winner.intrinsicName + ")\n\n";
    out += "| bucket | cycles | share |\n|---|---|---|\n";
    auto attr_row = [&](const char *name, double cycles) {
        double share =
            attr.totalCycles > 0 ? cycles / attr.totalCycles : 0.0;
        out += "| " + std::string(name) + " | " +
               fmtDouble(cycles, 1) + " | " +
               fmtDouble(share * 100.0, 1) + "% |\n";
    };
    attr_row("compute", attr.computeCycles);
    attr_row("shared_read", attr.sharedReadCycles);
    attr_row("global_read", attr.globalReadCycles);
    attr_row("global_write", attr.globalWriteCycles);
    out += "| total | " + fmtDouble(attr.totalCycles, 1) +
           " | 100% |\n\n";

    out += "## Per-level verdicts\n\n";
    out += "| level | bound | compute | read | write |\n"
           "|---|---|---|---|---|\n";
    for (const auto &lv : winner.levels) {
        out += "| " + lv.level + " | " +
               bottleneckName(lv.bound) + " | " +
               fmtDouble(lv.computeCycles, 1) + " | " +
               fmtDouble(lv.readCycles, 1) + " | " +
               fmtDouble(lv.writeCycles, 1) + " |\n";
    }
    out += "\n";

    const RooflinePoint &roof = winner.roofline;
    out += "## Roofline\n\noperational intensity " +
           fmtDouble(roof.operationalIntensity, 3) +
           " ops/byte (ridge at " +
           fmtDouble(roof.ridgeIntensity, 3) + "): the kernel is " +
           (roof.memoryBound ? "left of the ridge (memory-bound "
                               "region)"
                             : "right of the ridge (compute-bound "
                               "region)") +
           ".\nattained " +
           fmtDouble(roof.attainedOpsPerCycle, 1) +
           " ops/cycle of " +
           fmtDouble(roof.peakOpsPerCycle, 1) + " peak (" +
           fmtDouble(roof.peakOpsPerCycle > 0
                         ? 100.0 * roof.attainedOpsPerCycle /
                               roof.peakOpsPerCycle
                         : 0.0,
                     1) +
           "%).\n\n";

    const ModelAgreement &agr = report.agreement;
    out += "## Model vs simulator\n\n";
    out += "pairwise rank accuracy " +
           fmtDouble(agr.pairwiseAccuracy, 3) + ", top-40% recall " +
           fmtDouble(agr.topFractionRecall, 3) +
           ", geo-mean relative error " +
           fmtDouble(agr.geoMeanRelativeError, 2) + " over " +
           std::to_string(agr.traceSteps) +
           " trace steps.\nwinner: predicted " +
           fmtDouble(agr.winnerPredictedCycles, 0) +
           " vs measured " +
           fmtDouble(agr.winnerMeasuredCycles, 0) + " cycles (" +
           fmtDouble(agr.winnerRelativeError, 2) + "x).\n\n";

    if (report.candidates.size() > 1) {
        out += "## Runners-up\n\n";
        out += "| mapping | measured | vs winner | bottleneck |\n"
               "|---|---|---|---|\n";
        for (std::size_t i = 1; i < report.candidates.size();
             ++i) {
            const auto &cand = report.candidates[i];
            out += "| " + cand.mappingSignature + " | " +
                   fmtDouble(cand.measuredCycles, 0) + " | " +
                   fmtDouble(cand.slowdownVsWinner, 2) + "x | " +
                   bottleneckName(cand.attribution.bottleneck) +
                   " |\n";
        }
        out += "\n";
    }

    if (!report.telemetry.empty()) {
        out += "## Search telemetry\n\n";
        out += "| gen | phase | pop | mappings | genomes | new | "
               "reused | best predicted | best measured |\n"
               "|---|---|---|---|---|---|---|---|---|\n";
        for (const auto &row : report.telemetry) {
            out += "| " + std::to_string(row.generation) + " | " +
                   row.phase + " | " +
                   std::to_string(row.populationSize) + " | " +
                   std::to_string(row.distinctMappings) + " | " +
                   std::to_string(row.distinctGenomes) + " | " +
                   std::to_string(row.measuredNew) + " | " +
                   std::to_string(row.measuredReused) + " | " +
                   fmtDouble(row.bestPredictedCycles, 0) + " | " +
                   fmtDouble(row.bestMeasuredCycles, 0) + " |\n";
        }
    }
    return out;
}

} // namespace report
} // namespace amos
