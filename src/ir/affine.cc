#include "affine.hh"

#include <algorithm>

#include "support/logging.hh"

namespace amos {

void
AffineForm::addTerm(const VarNode *var, std::int64_t coeff)
{
    if (coeff == 0)
        return;
    for (auto &term : _terms) {
        if (term.var == var) {
            term.coeff += coeff;
            if (term.coeff == 0) {
                _terms.erase(
                    std::remove_if(_terms.begin(), _terms.end(),
                                   [var](const AffineTerm &t) {
                                       return t.var == var;
                                   }),
                    _terms.end());
            }
            return;
        }
    }
    _terms.push_back({var, coeff});
}

void
AffineForm::scale(std::int64_t factor)
{
    if (factor == 0) {
        _terms.clear();
        _constant = 0;
        return;
    }
    for (auto &term : _terms)
        term.coeff *= factor;
    _constant *= factor;
}

void
AffineForm::accumulate(const AffineForm &other)
{
    for (const auto &term : other._terms)
        addTerm(term.var, term.coeff);
    _constant += other._constant;
}

std::int64_t
AffineForm::coeffOf(const VarNode *var) const
{
    for (const auto &term : _terms)
        if (term.var == var)
            return term.coeff;
    return 0;
}

Expr
AffineForm::toExpr() const
{
    Expr out(_constant);
    for (const auto &term : _terms) {
        Expr var(std::shared_ptr<const ExprNode>(
            // Re-wrap the borrowed VarNode without owning it; the
            // computation that produced this form keeps it alive.
            std::shared_ptr<const ExprNode>(), term.var));
        out = out + var * Expr(term.coeff);
    }
    return out;
}

std::string
AffineForm::toString() const
{
    std::string out;
    bool first = true;
    for (const auto &term : _terms) {
        if (!first)
            out += " + ";
        first = false;
        if (term.coeff == 1)
            out += term.var->name;
        else
            out += std::to_string(term.coeff) + "*" + term.var->name;
    }
    if (_constant != 0 || first) {
        if (!first)
            out += " + ";
        out += std::to_string(_constant);
    }
    return out;
}

namespace {

AffineAnalysis
affineRec(const Expr &expr)
{
    const ExprNode *node = expr.get();
    AffineAnalysis out;
    switch (node->kind()) {
      case ExprKind::IntImm:
        out.form =
            AffineForm(static_cast<const IntImmNode *>(node)->value);
        return out;
      case ExprKind::Var: {
        AffineForm form;
        form.addTerm(static_cast<const VarNode *>(node), 1);
        out.form = std::move(form);
        return out;
      }
      case ExprKind::Add:
      case ExprKind::Sub: {
        auto *bin = static_cast<const BinaryNode *>(node);
        auto a = affineRec(bin->a);
        if (!a.ok())
            return a;
        auto b = affineRec(bin->b);
        if (!b.ok())
            return b;
        if (node->kind() == ExprKind::Sub)
            b.form->scale(-1);
        a.form->accumulate(*b.form);
        return a;
      }
      case ExprKind::Mul: {
        auto *bin = static_cast<const BinaryNode *>(node);
        auto a = affineRec(bin->a);
        if (!a.ok())
            return a;
        auto b = affineRec(bin->b);
        if (!b.ok())
            return b;
        if (b.form->terms().empty()) {
            a.form->scale(b.form->constant());
            return a;
        }
        if (a.form->terms().empty()) {
            b.form->scale(a.form->constant());
            return b;
        }
        out.reason = "variable-by-variable product " +
                     exprToString(expr);
        return out;
      }
      default:
        out.reason = std::string(exprKindName(node->kind())) +
                     " node " + exprToString(expr) +
                     " is not affine";
        return out;
    }
}

} // namespace

std::optional<AffineForm>
tryToAffine(const Expr &expr)
{
    require(expr.defined(), "tryToAffine on undefined expression");
    return affineRec(expr).form;
}

AffineAnalysis
analyzeAffine(const Expr &expr)
{
    require(expr.defined(), "analyzeAffine on undefined expression");
    return affineRec(expr);
}

AffineAnalysis
analyzeFlatAccess(const std::vector<Expr> &indices,
                  const std::vector<std::int64_t> &strides)
{
    require(indices.size() == strides.size(),
            "analyzeFlatAccess: ", indices.size(), " indices vs ",
            strides.size(), " strides");
    AffineAnalysis out;
    AffineForm flat;
    for (std::size_t d = 0; d < indices.size(); ++d) {
        auto dim = analyzeAffine(indices[d]);
        if (!dim.ok()) {
            out.reason = "index dim " + std::to_string(d) + ": " +
                         dim.reason;
            return out;
        }
        dim.form->scale(strides[d]);
        flat.accumulate(*dim.form);
    }
    out.form = std::move(flat);
    return out;
}

} // namespace amos
