#include "expr.hh"

#include <atomic>
#include <functional>

#include "support/logging.hh"
#include "support/math_utils.hh"

namespace amos {

namespace {

std::atomic<std::uint64_t> next_var_id{1};

/** Floor division matching Python semantics (rounds toward -inf). */
std::int64_t
floorDivInt(std::int64_t a, std::int64_t b)
{
    require(b != 0, "floorDiv by zero");
    std::int64_t q = a / b;
    if ((a % b != 0) && ((a < 0) != (b < 0)))
        --q;
    return q;
}

std::int64_t
floorModInt(std::int64_t a, std::int64_t b)
{
    return a - floorDivInt(a, b) * b;
}

const IntImmNode *
asIntImm(const Expr &e)
{
    if (e.defined() && e->kind() == ExprKind::IntImm)
        return static_cast<const IntImmNode *>(e.get());
    return nullptr;
}

Expr
makeBinary(ExprKind kind, Expr a, Expr b)
{
    return Expr(std::make_shared<BinaryNode>(kind, std::move(a),
                                             std::move(b)));
}

} // namespace

const char *
exprKindName(ExprKind kind)
{
    switch (kind) {
      case ExprKind::IntImm: return "IntImm";
      case ExprKind::Var: return "Var";
      case ExprKind::Add: return "Add";
      case ExprKind::Sub: return "Sub";
      case ExprKind::Mul: return "Mul";
      case ExprKind::FloorDiv: return "FloorDiv";
      case ExprKind::FloorMod: return "FloorMod";
      case ExprKind::Min: return "Min";
      case ExprKind::Max: return "Max";
    }
    return "Unknown";
}

Expr::Expr(std::int64_t value)
    : _node(std::make_shared<IntImmNode>(value))
{
}

VarNode::VarNode(std::string name)
    : ExprNode(ExprKind::Var), name(std::move(name)),
      id(next_var_id.fetch_add(1))
{
}

BinaryNode::BinaryNode(ExprKind kind, Expr a, Expr b)
    : ExprNode(kind), a(std::move(a)), b(std::move(b))
{
    require(this->a.defined() && this->b.defined(),
            "BinaryNode with undefined operand");
}

Expr
makeIntImm(std::int64_t value)
{
    return Expr(value);
}

Expr
operator+(Expr a, Expr b)
{
    auto *ia = asIntImm(a);
    auto *ib = asIntImm(b);
    if (ia && ib)
        return Expr(ia->value + ib->value);
    if (ia && ia->value == 0)
        return b;
    if (ib && ib->value == 0)
        return a;
    return makeBinary(ExprKind::Add, std::move(a), std::move(b));
}

Expr
operator-(Expr a, Expr b)
{
    auto *ia = asIntImm(a);
    auto *ib = asIntImm(b);
    if (ia && ib)
        return Expr(ia->value - ib->value);
    if (ib && ib->value == 0)
        return a;
    return makeBinary(ExprKind::Sub, std::move(a), std::move(b));
}

Expr
operator*(Expr a, Expr b)
{
    auto *ia = asIntImm(a);
    auto *ib = asIntImm(b);
    if (ia && ib)
        return Expr(ia->value * ib->value);
    if ((ia && ia->value == 0) || (ib && ib->value == 0))
        return Expr(std::int64_t{0});
    if (ia && ia->value == 1)
        return b;
    if (ib && ib->value == 1)
        return a;
    return makeBinary(ExprKind::Mul, std::move(a), std::move(b));
}

Expr
floorDiv(Expr a, Expr b)
{
    auto *ia = asIntImm(a);
    auto *ib = asIntImm(b);
    if (ia && ib)
        return Expr(floorDivInt(ia->value, ib->value));
    if (ib && ib->value == 1)
        return a;
    return makeBinary(ExprKind::FloorDiv, std::move(a), std::move(b));
}

Expr
floorMod(Expr a, Expr b)
{
    auto *ia = asIntImm(a);
    auto *ib = asIntImm(b);
    if (ia && ib)
        return Expr(floorModInt(ia->value, ib->value));
    if (ib && ib->value == 1)
        return Expr(std::int64_t{0});
    return makeBinary(ExprKind::FloorMod, std::move(a), std::move(b));
}

Expr
min(Expr a, Expr b)
{
    auto *ia = asIntImm(a);
    auto *ib = asIntImm(b);
    if (ia && ib)
        return Expr(std::min(ia->value, ib->value));
    return makeBinary(ExprKind::Min, std::move(a), std::move(b));
}

Expr
max(Expr a, Expr b)
{
    auto *ia = asIntImm(a);
    auto *ib = asIntImm(b);
    if (ia && ib)
        return Expr(std::max(ia->value, ib->value));
    return makeBinary(ExprKind::Max, std::move(a), std::move(b));
}

std::int64_t
evalExpr(const Expr &expr, const VarBinding &binding)
{
    require(expr.defined(), "evalExpr on undefined expression");
    const ExprNode *node = expr.get();
    switch (node->kind()) {
      case ExprKind::IntImm:
        return static_cast<const IntImmNode *>(node)->value;
      case ExprKind::Var: {
        auto *var = static_cast<const VarNode *>(node);
        auto it = binding.find(var);
        require(it != binding.end(), "evalExpr: unbound variable ",
                var->name);
        return it->second;
      }
      default: {
        auto *bin = static_cast<const BinaryNode *>(node);
        std::int64_t a = evalExpr(bin->a, binding);
        std::int64_t b = evalExpr(bin->b, binding);
        switch (node->kind()) {
          case ExprKind::Add: return a + b;
          case ExprKind::Sub: return a - b;
          case ExprKind::Mul: return a * b;
          case ExprKind::FloorDiv: return floorDivInt(a, b);
          case ExprKind::FloorMod: return floorModInt(a, b);
          case ExprKind::Min: return std::min(a, b);
          case ExprKind::Max: return std::max(a, b);
          default:
            panic("evalExpr: unhandled kind ",
                  exprKindName(node->kind()));
        }
      }
    }
}

namespace {

void
collectVarsRec(const Expr &expr, std::vector<const VarNode *> &out)
{
    const ExprNode *node = expr.get();
    switch (node->kind()) {
      case ExprKind::IntImm:
        return;
      case ExprKind::Var: {
        auto *var = static_cast<const VarNode *>(node);
        for (auto *v : out)
            if (v == var)
                return;
        out.push_back(var);
        return;
      }
      default: {
        auto *bin = static_cast<const BinaryNode *>(node);
        collectVarsRec(bin->a, out);
        collectVarsRec(bin->b, out);
      }
    }
}

} // namespace

std::vector<const VarNode *>
collectVars(const Expr &expr)
{
    std::vector<const VarNode *> out;
    if (expr.defined())
        collectVarsRec(expr, out);
    return out;
}

bool
usesVar(const Expr &expr, const VarNode *var)
{
    for (auto *v : collectVars(expr))
        if (v == var)
            return true;
    return false;
}

Expr
substitute(const Expr &expr,
           const std::unordered_map<const VarNode *, Expr> &map)
{
    require(expr.defined(), "substitute on undefined expression");
    const ExprNode *node = expr.get();
    switch (node->kind()) {
      case ExprKind::IntImm:
        return expr;
      case ExprKind::Var: {
        auto *var = static_cast<const VarNode *>(node);
        auto it = map.find(var);
        return it == map.end() ? expr : it->second;
      }
      default: {
        auto *bin = static_cast<const BinaryNode *>(node);
        Expr a = substitute(bin->a, map);
        Expr b = substitute(bin->b, map);
        if (a.sameAs(bin->a) && b.sameAs(bin->b))
            return expr;
        switch (node->kind()) {
          case ExprKind::Add: return a + b;
          case ExprKind::Sub: return a - b;
          case ExprKind::Mul: return a * b;
          case ExprKind::FloorDiv: return floorDiv(a, b);
          case ExprKind::FloorMod: return floorMod(a, b);
          case ExprKind::Min: return min(a, b);
          case ExprKind::Max: return max(a, b);
          default:
            panic("substitute: unhandled kind ",
                  exprKindName(node->kind()));
        }
      }
    }
}

std::string
exprToString(const Expr &expr)
{
    if (!expr.defined())
        return "<undef>";
    const ExprNode *node = expr.get();
    switch (node->kind()) {
      case ExprKind::IntImm:
        return std::to_string(
            static_cast<const IntImmNode *>(node)->value);
      case ExprKind::Var:
        return static_cast<const VarNode *>(node)->name;
      default: {
        auto *bin = static_cast<const BinaryNode *>(node);
        std::string a = exprToString(bin->a);
        std::string b = exprToString(bin->b);
        switch (node->kind()) {
          case ExprKind::Add: return "(" + a + " + " + b + ")";
          case ExprKind::Sub: return "(" + a + " - " + b + ")";
          case ExprKind::Mul: return "(" + a + " * " + b + ")";
          case ExprKind::FloorDiv: return "(" + a + " / " + b + ")";
          case ExprKind::FloorMod: return "(" + a + " % " + b + ")";
          case ExprKind::Min: return "min(" + a + ", " + b + ")";
          case ExprKind::Max: return "max(" + a + ", " + b + ")";
          default:
            panic("exprToString: unhandled kind ",
                  exprKindName(node->kind()));
        }
      }
    }
}

} // namespace amos
