/**
 * @file
 * Affine-form analysis of index expressions.
 *
 * The mapping machinery needs to know, for each tensor access index,
 * which loop iterators participate and with what coefficients. An
 * AffineForm is the canonical representation
 *     sum_i coeff_i * var_i + constant
 * and tryToAffine() attempts to put an Expr into that form. Physical
 * mapping expressions containing floordiv/floormod are intentionally
 * not affine and fail the conversion.
 */

#ifndef AMOS_IR_AFFINE_HH
#define AMOS_IR_AFFINE_HH

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "ir/expr.hh"

namespace amos {

/** One linear term: coefficient times a variable. */
struct AffineTerm
{
    const VarNode *var = nullptr;
    std::int64_t coeff = 0;
};

/** Canonical affine form: sum of terms plus a constant. */
class AffineForm
{
  public:
    AffineForm() = default;

    /** Construct a pure constant. */
    explicit AffineForm(std::int64_t constant) : _constant(constant) {}

    /** Add coeff * var to the form, merging duplicate variables. */
    void addTerm(const VarNode *var, std::int64_t coeff);

    void addConstant(std::int64_t c) { _constant += c; }

    /** Multiply the whole form by a scalar. */
    void scale(std::int64_t factor);

    /** Add another form into this one. */
    void accumulate(const AffineForm &other);

    const std::vector<AffineTerm> &terms() const { return _terms; }
    std::int64_t constant() const { return _constant; }

    /** Coefficient of a variable (0 if absent). */
    std::int64_t coeffOf(const VarNode *var) const;

    /** True iff the variable appears with nonzero coefficient. */
    bool uses(const VarNode *var) const { return coeffOf(var) != 0; }

    /** Rebuild an Expr equal to this form. */
    Expr toExpr() const;

    std::string toString() const;

  private:
    std::vector<AffineTerm> _terms;
    std::int64_t _constant = 0;
};

/**
 * Try to express an index expression in affine form.
 *
 * Handles +, -, * (with at least one side constant-foldable), and
 * literals/variables. Returns nullopt for floordiv/floormod/min/max
 * or variable-by-variable products.
 */
std::optional<AffineForm> tryToAffine(const Expr &expr);

/**
 * Affine analysis with a diagnosis: either the form, or the reason
 * the expression is not affine (which sub-expression broke it and
 * why). The execution-plan compiler logs the reason when it falls
 * back to the interpreter.
 */
struct AffineAnalysis
{
    std::optional<AffineForm> form;
    /// Human-readable failure reason; empty iff form has a value.
    std::string reason;

    bool ok() const { return form.has_value(); }
};

/** Like tryToAffine, but reports why the conversion failed. */
AffineAnalysis analyzeAffine(const Expr &expr);

/**
 * Fold a multi-dimensional access into one affine form over the flat
 * (row-major) address: sum_d strides[d] * indices[d]. Fails — with a
 * reason naming the offending dimension — if any index expression is
 * non-affine. This is the "base + sum stride_i * iter_i" form the
 * stride-walk execution engine is compiled from.
 */
AffineAnalysis analyzeFlatAccess(const std::vector<Expr> &indices,
                                 const std::vector<std::int64_t> &strides);

} // namespace amos

#endif // AMOS_IR_AFFINE_HH
