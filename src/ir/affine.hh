/**
 * @file
 * Affine-form analysis of index expressions.
 *
 * The mapping machinery needs to know, for each tensor access index,
 * which loop iterators participate and with what coefficients. An
 * AffineForm is the canonical representation
 *     sum_i coeff_i * var_i + constant
 * and tryToAffine() attempts to put an Expr into that form. Physical
 * mapping expressions containing floordiv/floormod are intentionally
 * not affine and fail the conversion.
 */

#ifndef AMOS_IR_AFFINE_HH
#define AMOS_IR_AFFINE_HH

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "ir/expr.hh"

namespace amos {

/** One linear term: coefficient times a variable. */
struct AffineTerm
{
    const VarNode *var = nullptr;
    std::int64_t coeff = 0;
};

/** Canonical affine form: sum of terms plus a constant. */
class AffineForm
{
  public:
    AffineForm() = default;

    /** Construct a pure constant. */
    explicit AffineForm(std::int64_t constant) : _constant(constant) {}

    /** Add coeff * var to the form, merging duplicate variables. */
    void addTerm(const VarNode *var, std::int64_t coeff);

    void addConstant(std::int64_t c) { _constant += c; }

    /** Multiply the whole form by a scalar. */
    void scale(std::int64_t factor);

    /** Add another form into this one. */
    void accumulate(const AffineForm &other);

    const std::vector<AffineTerm> &terms() const { return _terms; }
    std::int64_t constant() const { return _constant; }

    /** Coefficient of a variable (0 if absent). */
    std::int64_t coeffOf(const VarNode *var) const;

    /** True iff the variable appears with nonzero coefficient. */
    bool uses(const VarNode *var) const { return coeffOf(var) != 0; }

    /** Rebuild an Expr equal to this form. */
    Expr toExpr() const;

    std::string toString() const;

  private:
    std::vector<AffineTerm> _terms;
    std::int64_t _constant = 0;
};

/**
 * Try to express an index expression in affine form.
 *
 * Handles +, -, * (with at least one side constant-foldable), and
 * literals/variables. Returns nullopt for floordiv/floormod/min/max
 * or variable-by-variable products.
 */
std::optional<AffineForm> tryToAffine(const Expr &expr);

} // namespace amos

#endif // AMOS_IR_AFFINE_HH
