/**
 * @file
 * Interval arithmetic over index expressions: a sound static range
 * analysis used to *prove* properties of generated mappings — that
 * every physical mapping expression stays inside its intrinsic
 * extent and every packed address inside its buffer — instead of
 * only observing them dynamically.
 */

#ifndef AMOS_IR_INTERVAL_HH
#define AMOS_IR_INTERVAL_HH

#include <cstdint>
#include <string>
#include <unordered_map>

#include "ir/expr.hh"

namespace amos {

/** A closed integer interval [lo, hi]. */
struct Interval
{
    std::int64_t lo = 0;
    std::int64_t hi = 0;

    bool
    contains(const Interval &other) const
    {
        return lo <= other.lo && other.hi <= hi;
    }

    std::int64_t width() const { return hi - lo + 1; }

    std::string toString() const;
};

/** Variable ranges for interval evaluation. */
using IntervalEnv = std::unordered_map<const VarNode *, Interval>;

/**
 * Sound over-approximation of an expression's value range under the
 * given variable ranges. Panics on unbound variables. Division and
 * modulo require a positive constant divisor (the only form the
 * mapping machinery produces).
 */
Interval evalInterval(const Expr &expr, const IntervalEnv &env);

} // namespace amos

#endif // AMOS_IR_INTERVAL_HH
