/**
 * @file
 * Tensor-expression IR.
 *
 * A minimal index-expression language standing in for the TVM
 * expression IR that the original AMOS is built on. Index expressions
 * describe how loop iterators address tensors (e.g. p + r, or
 * p * stride + r * dilation) and, after physical mapping, carry the
 * floordiv/floormod arithmetic that locates intrinsic sub-tiles.
 *
 * Nodes are immutable and shared; Expr is a value-semantic handle.
 */

#ifndef AMOS_IR_EXPR_HH
#define AMOS_IR_EXPR_HH

#include <cstdint>
#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

namespace amos {

class ExprNode;

/** Value-semantic handle to an immutable expression node. */
class Expr
{
  public:
    Expr() = default;

    explicit Expr(std::shared_ptr<const ExprNode> node)
        : _node(std::move(node))
    {}

    /** Implicit conversion from integer literals. */
    Expr(std::int64_t value);
    Expr(int value) : Expr(static_cast<std::int64_t>(value)) {}

    bool defined() const { return _node != nullptr; }

    const ExprNode *get() const { return _node.get(); }

    const ExprNode *operator->() const { return _node.get(); }

    /** Structural identity (same node object). */
    bool sameAs(const Expr &other) const
    {
        return _node.get() == other._node.get();
    }

  private:
    std::shared_ptr<const ExprNode> _node;
};

/** Discriminator for ExprNode subclasses. */
enum class ExprKind
{
    IntImm,
    Var,
    Add,
    Sub,
    Mul,
    FloorDiv,
    FloorMod,
    Min,
    Max,
};

/** Printable name of an expression kind (for diagnostics). */
const char *exprKindName(ExprKind kind);

/** Base class of all expression nodes. */
class ExprNode
{
  public:
    explicit ExprNode(ExprKind kind) : _kind(kind) {}
    virtual ~ExprNode() = default;

    ExprKind kind() const { return _kind; }

  private:
    ExprKind _kind;
};

/** Integer literal. */
class IntImmNode : public ExprNode
{
  public:
    explicit IntImmNode(std::int64_t value)
        : ExprNode(ExprKind::IntImm), value(value)
    {}

    const std::int64_t value;
};

/**
 * Named loop iterator / free variable.
 *
 * Identity is the node object itself: two VarNodes with the same name
 * are distinct variables. Each VarNode receives a process-unique id
 * for stable printing.
 */
class VarNode : public ExprNode
{
  public:
    explicit VarNode(std::string name);

    const std::string name;
    const std::uint64_t id;
};

/** Handle to a variable; constructible by name. */
class Var : public Expr
{
  public:
    explicit Var(const std::string &name)
        : Expr(std::make_shared<VarNode>(name))
    {}

    explicit Var(std::shared_ptr<const VarNode> node)
        : Expr(std::move(node))
    {}

    const VarNode *node() const
    {
        return static_cast<const VarNode *>(get());
    }
};

/** Binary operation node; kind() selects the operator. */
class BinaryNode : public ExprNode
{
  public:
    BinaryNode(ExprKind kind, Expr a, Expr b);

    const Expr a;
    const Expr b;
};

/// @name Expression builders.
/// Builders constant-fold literal operands and apply simple algebraic
/// identities (x+0, x*1, x*0) so printed mappings stay readable.
/// @{
Expr makeIntImm(std::int64_t value);
Expr operator+(Expr a, Expr b);
Expr operator-(Expr a, Expr b);
Expr operator*(Expr a, Expr b);
Expr floorDiv(Expr a, Expr b);
Expr floorMod(Expr a, Expr b);
Expr min(Expr a, Expr b);
Expr max(Expr a, Expr b);
/// @}

/** Variable binding environment for evaluation. */
using VarBinding = std::unordered_map<const VarNode *, std::int64_t>;

/**
 * Evaluate an expression under a binding of every referenced
 * variable. Raises panic() if a variable is unbound.
 */
std::int64_t evalExpr(const Expr &expr, const VarBinding &binding);

/** Collect the distinct variables referenced by an expression. */
std::vector<const VarNode *> collectVars(const Expr &expr);

/** True iff the expression references the given variable. */
bool usesVar(const Expr &expr, const VarNode *var);

/** Substitute variables by replacement expressions. */
Expr substitute(const Expr &expr,
                const std::unordered_map<const VarNode *, Expr> &map);

/** Render an expression as a human-readable string. */
std::string exprToString(const Expr &expr);

} // namespace amos

#endif // AMOS_IR_EXPR_HH
