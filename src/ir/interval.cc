#include "interval.hh"

#include <algorithm>

#include "support/logging.hh"

namespace amos {

std::string
Interval::toString() const
{
    return "[" + std::to_string(lo) + ", " + std::to_string(hi) +
           "]";
}

namespace {

Interval
addI(Interval a, Interval b)
{
    return {a.lo + b.lo, a.hi + b.hi};
}

Interval
subI(Interval a, Interval b)
{
    return {a.lo - b.hi, a.hi - b.lo};
}

Interval
mulI(Interval a, Interval b)
{
    std::int64_t c[4] = {a.lo * b.lo, a.lo * b.hi, a.hi * b.lo,
                         a.hi * b.hi};
    return {*std::min_element(c, c + 4), *std::max_element(c, c + 4)};
}

std::int64_t
floorDivInt(std::int64_t a, std::int64_t b)
{
    std::int64_t q = a / b;
    if ((a % b != 0) && ((a < 0) != (b < 0)))
        --q;
    return q;
}

} // namespace

Interval
evalInterval(const Expr &expr, const IntervalEnv &env)
{
    require(expr.defined(), "evalInterval on undefined expression");
    const ExprNode *node = expr.get();
    switch (node->kind()) {
      case ExprKind::IntImm: {
        auto v = static_cast<const IntImmNode *>(node)->value;
        return {v, v};
      }
      case ExprKind::Var: {
        auto *var = static_cast<const VarNode *>(node);
        auto it = env.find(var);
        require(it != env.end(), "evalInterval: unbound variable ",
                var->name);
        require(it->second.lo <= it->second.hi,
                "evalInterval: empty range for ", var->name);
        return it->second;
      }
      default: {
        auto *bin = static_cast<const BinaryNode *>(node);
        Interval a = evalInterval(bin->a, env);
        Interval b = evalInterval(bin->b, env);
        switch (node->kind()) {
          case ExprKind::Add: return addI(a, b);
          case ExprKind::Sub: return subI(a, b);
          case ExprKind::Mul: return mulI(a, b);
          case ExprKind::FloorDiv: {
            require(b.lo == b.hi && b.lo > 0,
                    "evalInterval: floordiv needs a positive "
                    "constant divisor, got ",
                    b.toString());
            return {floorDivInt(a.lo, b.lo),
                    floorDivInt(a.hi, b.lo)};
          }
          case ExprKind::FloorMod: {
            require(b.lo == b.hi && b.lo > 0,
                    "evalInterval: floormod needs a positive "
                    "constant divisor, got ",
                    b.toString());
            std::int64_t m = b.lo;
            // If the whole range shares one quotient the result is
            // exact; otherwise conservatively [0, m-1] (operands of
            // interest are non-negative).
            if (a.lo >= 0 &&
                floorDivInt(a.lo, m) == floorDivInt(a.hi, m))
                return {a.lo % m, a.hi % m};
            return {std::min<std::int64_t>(0, a.lo), m - 1};
          }
          case ExprKind::Min:
            return {std::min(a.lo, b.lo), std::min(a.hi, b.hi)};
          case ExprKind::Max:
            return {std::max(a.lo, b.lo), std::max(a.hi, b.hi)};
          default:
            panic("evalInterval: unhandled kind ",
                  exprKindName(node->kind()));
        }
      }
    }
}

} // namespace amos
