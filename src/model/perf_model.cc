#include "perf_model.hh"

#include <algorithm>
#include <limits>

#include "support/math_utils.hh"

namespace amos {

ModelEstimate
modelEstimate(const KernelProfile &prof, const HardwareSpec &hw)
{
    ModelEstimate est;
    if (!prof.valid()) {
        est.schedulable = false;
        est.totalCycles = std::numeric_limits<double>::infinity();
        return est;
    }

    // Level 0/1: the warp-serial loop. Compute rate is limited by the
    // intrinsic issue pipeline; reads come from shared memory at the
    // sub-core's share of the per-core bandwidth.
    double call_rate = prof.intrinsicLatencyCycles /
                       prof.intrinsicUnitsPerSubcore;
    est.computeWarp = prof.serialCallsPerWarp * call_rate;

    double shared_read_bw =
        hw.shared.readBytesPerCycle / hw.subcoresPerCore;
    est.readShared = prof.sharedLoadBytesPerWarp / shared_read_bw;

    double warp_cycles = std::max(est.computeWarp, est.readShared);

    // Level 2: one block. Warps beyond the sub-core count serialise;
    // global traffic uses the core's fair share of chip bandwidth
    // assuming ideal full-device occupancy.
    double warp_batches = static_cast<double>(
        ceilDiv(prof.warpsPerBlock, hw.subcoresPerCore));
    double compute_block = warp_batches * warp_cycles;
    est.computeBlock = compute_block;

    // Idealised concurrency: the occupancy cap is reached whenever
    // enough blocks exist (the simulator additionally limits it by
    // the shared-memory footprint and warp slots).
    double concurrent = static_cast<double>(std::min<std::int64_t>(
        prof.numBlocks,
        static_cast<std::int64_t>(hw.maxBlocksPerCore) *
            hw.numCores));
    concurrent = std::max(concurrent, 1.0);

    double global_bw_per_block =
        hw.global.readBytesPerCycle / concurrent;
    est.readGlobal =
        prof.globalLoadBytesPerBlock / global_bw_per_block;
    double global_wr_per_block =
        hw.global.writeBytesPerCycle / concurrent;
    est.writeGlobal =
        prof.globalStoreBytesPerBlock / global_wr_per_block;

    est.blockCycles = std::max(
        {compute_block, est.readGlobal, est.writeGlobal});

    // Level 3: the grid, with fractional waves (ideal scheduling,
    // no tail quantisation — a simplification the simulator does
    // not make).
    double waves =
        static_cast<double>(prof.numBlocks) / concurrent;
    waves = std::max(waves, 1.0);
    est.waves = waves;
    est.totalCycles = waves * est.blockCycles;
    return est;
}

double
modelCycles(const KernelProfile &prof, const HardwareSpec &hw)
{
    return modelEstimate(prof, hw).totalCycles;
}

} // namespace amos
