/**
 * @file
 * Analytic performance model (Sec. 5.3 of the AMOS paper).
 *
 * The accelerator is modelled level by level (level 0 = intrinsic):
 *
 *   Perf = L_{N-1}
 *   L_l  = prod(S_l) * max(L_{l-1}, R_{l-1}, W_{l-1})   for l > 0
 *   L_0  = prod(S_0) * latency_of_intrinsic
 *   R_l  = DataIn_l / in_bw_l,   W_l = DataOut_l / out_bw_l
 *
 * where S_l are the sequential (unbound) trip counts of level l and
 * DataIn/DataOut come from the kernel profile's footprint inference.
 * The model is intentionally simpler than the simulator: it assumes
 * ideal occupancy, fractional waves, and perfectly coalesced
 * accesses; see Fig. 5 for how well its rankings track ground truth.
 */

#ifndef AMOS_MODEL_PERF_MODEL_HH
#define AMOS_MODEL_PERF_MODEL_HH

#include "hw/hardware.hh"
#include "schedule/profile.hh"

namespace amos {

/** Per-level breakdown of the analytic estimate. */
struct ModelEstimate
{
    double computeWarp = 0.0;   ///< L_1: warp-serial compute, cycles
    double readShared = 0.0;    ///< R_1: shared-level load, cycles
    double readGlobal = 0.0;    ///< R_2: global-level load, cycles
    double writeGlobal = 0.0;   ///< W_2: global store, cycles
    double computeBlock = 0.0;  ///< warp batches x max(L_1, R_1)
    double blockCycles = 0.0;   ///< L_2
    double waves = 1.0;         ///< fractional grid waves
    double totalCycles = 0.0;   ///< Perf

    bool schedulable = true;    ///< false when the profile is invalid
};

/** Evaluate the model on a lowered kernel profile. */
ModelEstimate modelEstimate(const KernelProfile &prof,
                            const HardwareSpec &hw);

/** Shorthand: total predicted cycles (infinity when unschedulable). */
double modelCycles(const KernelProfile &prof, const HardwareSpec &hw);

} // namespace amos

#endif // AMOS_MODEL_PERF_MODEL_HH
