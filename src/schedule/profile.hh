/**
 * @file
 * Kernel profile: everything the performance model and the simulator
 * need to know about one (mapping, schedule) pair on one accelerator,
 * reduced to plain numbers — grid shape, serial trip counts, memory
 * footprints, data traffic per level, padding waste, and coalescing
 * behaviour of every operand.
 *
 * This corresponds to the bound-inference step the paper delegates to
 * the underlying compiler (Sec. 5.3: "DataIn and DataOut can be
 * calculated by inferring the size of buffers used in computation").
 */

#ifndef AMOS_SCHEDULE_PROFILE_HH
#define AMOS_SCHEDULE_PROFILE_HH

#include <cstdint>
#include <string>
#include <vector>

#include "hw/hardware.hh"
#include "mapping/mapping.hh"
#include "schedule/schedule.hh"

namespace amos {

/** Per-operand traffic/footprint numbers. */
struct OperandProfile
{
    std::string name;
    bool isOutput = false;
    std::int64_t tileBytes = 0;

    /// Distinct tiles referenced by one warp's serial loop.
    std::int64_t tilesPerWarp = 1;
    /// Distinct tiles referenced by one threadblock.
    std::int64_t tilesPerBlock = 1;
    /// Distinct tiles in the whole kernel.
    std::int64_t tilesTotal = 1;

    /**
     * Longest contiguous run (in elements) a staging loop can read
     * from the operand's *software* layout when gathering one tile:
     * the greedy chain of tile iterators whose software strides
     * compose into consecutive addresses. Short runs mean the
     * staging traffic is gather-like and wastes memory transactions.
     */
    std::int64_t contiguousRun = 1;

    /**
     * Fraction of the operand's tile space holding real data (the
     * rest is trailing padding). Staging loops read only real
     * elements — zero fill happens on chip — and stores are masked,
     * so *global* traffic scales by this fraction while on-chip
     * footprints and compute do not.
     */
    double usefulFraction = 1.0;
};

/** The complete numeric profile of one scheduled kernel. */
struct KernelProfile
{
    /// @name Grid structure
    /// @{
    std::int64_t numBlocks = 1;
    std::int64_t warpsPerBlock = 1;
    /// Serial intrinsic calls per warp (product of serial trips).
    std::int64_t serialCallsPerWarp = 1;
    /// Total intrinsic calls across the kernel (includes padding).
    std::int64_t totalCalls = 1;
    /// @}

    /// @name Footprints
    /// @{
    std::int64_t sharedBytesPerBlock = 0;
    std::int64_t regBytesPerWarp = 0;
    /// @}

    /// @name Traffic
    /// @{
    std::int64_t globalLoadBytesPerBlock = 0;
    std::int64_t globalStoreBytesPerBlock = 0;
    std::int64_t sharedLoadBytesPerWarp = 0;
    /// @}

    /// Executed-over-useful scalar-op inflation from padding.
    double paddingWaste = 1.0;

    /// Extra div/mod address terms evaluated per intrinsic call:
    /// each software iteration fused beyond the first in a group
    /// adds one (the (n*4 + p*2 + q) / 2 chains of Fig. 3h).
    int addressTerms = 0;

    /// Useful scalar multiply-accumulate operations (no padding).
    std::int64_t usefulOps = 0;

    std::vector<OperandProfile> operands;

    /// Intrinsic timing attributes (the plan's intrinsic, which may
    /// differ from the hardware's primary one when several problem
    /// shapes are exposed).
    double intrinsicLatencyCycles = 1.0;
    int intrinsicUnitsPerSubcore = 1;
    std::string intrinsicName;

    /// Schedule knobs forwarded to the timing models.
    int stageDepth = 1;
    int vectorLanes = 1;
    int unrollDepth = 1;

    /// @name Validity
    /// @{
    bool fitsShared = true; ///< shared footprint within capacity
    bool fitsRegs = true;   ///< register footprint within the file
    bool valid() const { return fitsShared && fitsRegs; }
    /// @}

    std::string toString() const;
};

/**
 * Lower a (plan, schedule) pair into a kernel profile for the given
 * hardware. Panics if the schedule shape does not match the plan.
 */
KernelProfile lowerKernel(const MappingPlan &plan,
                          const Schedule &sched,
                          const HardwareSpec &hw);

/**
 * Expert-chosen schedule heuristic standing in for a hand-tuned
 * library kernel: fill the cores with ~2 blocks each, a few warps
 * per block, double-buffered vectorised staging. Also used to seed
 * the tuner's initial population.
 */
Schedule expertSchedule(const MappingPlan &plan,
                        const HardwareSpec &hw);

/**
 * Emit C-like pseudo-code of the scheduled kernel: the grid binding,
 * staging statements derived from the memory abstraction, and the
 * intrinsic call with its physical mapping expressions. Purely for
 * humans (examples and docs); the simulator consumes the profile.
 */
std::string renderPseudoCode(const MappingPlan &plan,
                             const Schedule &sched,
                             const HardwareSpec &hw);

} // namespace amos

#endif // AMOS_SCHEDULE_PROFILE_HH
