#include "schedule.hh"

#include "support/math_utils.hh"
#include "support/str_utils.hh"
#include "support/trace.hh"

namespace amos {

std::string
Schedule::toString() const
{
    std::string out = "schedule{axes=[";
    out += joinMapped(axes, ", ", [](const AxisSchedule &a) {
        return std::to_string(a.blockFactor) + "b/" +
               std::to_string(a.warpFactor) + "w";
    });
    out += "], stage=" + std::to_string(stageDepth);
    out += ", vec=" + std::to_string(vectorLanes);
    out += ", unroll=" + std::to_string(unrollDepth) + "}";
    return out;
}

bool
axisIsReduction(const MappingPlan &plan, std::size_t axis)
{
    const auto &ax = plan.outerAxes()[axis];
    if (ax.kind == MappingPlan::OuterAxis::Kind::Unmapped) {
        return plan.computation().iters()[ax.ref].kind ==
               IterKind::Reduction;
    }
    return plan.intrinsic().compute.iters()[ax.ref].reduction;
}

Schedule
defaultSchedule(const MappingPlan &plan)
{
    Schedule sched;
    sched.axes.assign(plan.outerAxes().size(), AxisSchedule{});
    return sched;
}

namespace {

const std::vector<int> kStageChoices = {1, 2};
const std::vector<int> kVectorChoices = {1, 2, 4, 8};
const std::vector<int> kUnrollChoices = {1, 2, 4};

} // namespace

Schedule
sampleSchedule(const MappingPlan &plan, Rng &rng)
{
    TraceSpan span("schedule.sample", "schedule");
    Schedule sched = defaultSchedule(plan);
    for (std::size_t a = 0; a < sched.axes.size(); ++a) {
        if (axisIsReduction(plan, a))
            continue;
        std::int64_t extent = plan.outerAxes()[a].extent;
        auto cands = tileCandidates(extent);
        std::int64_t bf = rng.choice(cands);
        std::int64_t remaining = ceilDiv(extent, bf);
        auto warp_cands = tileCandidates(remaining);
        sched.axes[a].blockFactor = bf;
        sched.axes[a].warpFactor = rng.choice(warp_cands);
    }
    sched.stageDepth = rng.choice(kStageChoices);
    sched.vectorLanes = rng.choice(kVectorChoices);
    sched.unrollDepth = rng.choice(kUnrollChoices);
    return sched;
}

Schedule
mutateSchedule(const MappingPlan &plan, const Schedule &sched, Rng &rng)
{
    Schedule out = sched;
    // Pick one knob class to perturb: an axis split or a global knob.
    std::vector<std::size_t> spatial_axes;
    for (std::size_t a = 0; a < out.axes.size(); ++a)
        if (!axisIsReduction(plan, a))
            spatial_axes.push_back(a);

    double roll = rng.uniformReal();
    if (!spatial_axes.empty() && roll < 0.7) {
        std::size_t a = rng.choice(spatial_axes);
        std::int64_t extent = plan.outerAxes()[a].extent;
        if (rng.flip(0.5)) {
            out.axes[a].blockFactor =
                rng.choice(tileCandidates(extent));
        } else {
            std::int64_t remaining =
                ceilDiv(extent, out.axes[a].blockFactor);
            out.axes[a].warpFactor =
                rng.choice(tileCandidates(remaining));
        }
    } else if (roll < 0.8) {
        out.stageDepth = rng.choice(kStageChoices);
    } else if (roll < 0.9) {
        out.vectorLanes = rng.choice(kVectorChoices);
    } else {
        out.unrollDepth = rng.choice(kUnrollChoices);
    }
    return out;
}

Schedule
crossoverSchedules(const Schedule &a, const Schedule &b, Rng &rng)
{
    require(a.axes.size() == b.axes.size(),
            "crossoverSchedules: incompatible schedules");
    Schedule out = a;
    for (std::size_t i = 0; i < out.axes.size(); ++i)
        if (rng.flip(0.5))
            out.axes[i] = b.axes[i];
    if (rng.flip(0.5))
        out.stageDepth = b.stageDepth;
    if (rng.flip(0.5))
        out.vectorLanes = b.vectorLanes;
    if (rng.flip(0.5))
        out.unrollDepth = b.unrollDepth;
    return out;
}

} // namespace amos
