#include "profile.hh"

#include <algorithm>

#include "ir/affine.hh"
#include "support/logging.hh"
#include "support/math_utils.hh"
#include "support/str_utils.hh"
#include "support/trace.hh"

namespace amos {

namespace {

/**
 * Stride (in elements) of one software iterator within an operand's
 * flattened row-major layout: the sum over tensor dimensions of the
 * iterator's affine coefficient times the dimension stride.
 */
std::int64_t
softwareStrideOf(const TensorDecl &decl,
                 const std::vector<Expr> &indices, const VarNode *var)
{
    auto dim_strides = decl.strides();
    std::int64_t total = 0;
    for (std::size_t d = 0; d < indices.size(); ++d) {
        auto form = tryToAffine(indices[d]);
        require(form.has_value(),
                "softwareStrideOf: non-affine access on ",
                decl.name());
        total += form->coeffOf(var) * dim_strides[d];
    }
    return total < 0 ? -total : total;
}

/**
 * Longest contiguous run (in elements) a staging loop can achieve
 * when gathering one tile of the operand from its software layout:
 * greedily chain the tile's iterators by ascending software stride,
 * extending the run whenever an iterator's stride equals the run
 * built so far.
 */
std::int64_t
contiguousRunOf(const MappingPlan &plan, const TensorDecl &decl,
                const std::vector<Expr> &indices,
                const MappingPlan::OperandInfo &op)
{
    const auto &comp = plan.computation();
    // Collect (stride, extent) of every software iterator fused into
    // the operand's intrinsic iterations.
    std::vector<std::pair<std::int64_t, std::int64_t>> dims;
    for (auto k : op.intrinsicIters) {
        for (auto s : plan.groups()[k].members) {
            const VarNode *var = comp.iters()[s].var.node();
            std::int64_t stride =
                softwareStrideOf(decl, indices, var);
            if (stride > 0)
                dims.push_back({stride, comp.iters()[s].extent});
        }
    }
    // Ascending stride; among equal strides prefer the largest
    // extent (overlapping iterators cover the same addresses).
    std::sort(dims.begin(), dims.end(),
              [](const auto &a, const auto &b) {
                  return a.first != b.first ? a.first < b.first
                                            : a.second > b.second;
              });
    std::int64_t run = 1;
    for (const auto &[stride, extent] : dims) {
        if (stride == run)
            run *= extent;
        else if (stride > run)
            break;
        // stride < run: a redundant iterator that overlaps the run
        // already built; skip it.
    }
    return run;
}

} // namespace

std::string
KernelProfile::toString() const
{
    std::string out = "profile{blocks=" + std::to_string(numBlocks);
    out += ", warps=" + std::to_string(warpsPerBlock);
    out += ", serial=" + std::to_string(serialCallsPerWarp);
    out += ", shared=" + std::to_string(sharedBytesPerBlock) + "B";
    out += ", gload=" + std::to_string(globalLoadBytesPerBlock) + "B";
    out += ", waste=" + fmtDouble(paddingWaste, 3);
    out += valid() ? "" : ", INVALID";
    out += "}";
    return out;
}

KernelProfile
lowerKernel(const MappingPlan &plan, const Schedule &sched,
            const HardwareSpec &hw)
{
    const auto &axes = plan.outerAxes();
    require(sched.axes.size() == axes.size(),
            "lowerKernel: schedule has ", sched.axes.size(),
            " axes but the plan has ", axes.size());

    KernelProfile prof;
    prof.stageDepth = sched.stageDepth;
    prof.vectorLanes = sched.vectorLanes;
    prof.unrollDepth = sched.unrollDepth;
    prof.paddingWaste = plan.paddingWasteFactor();
    prof.usefulOps = plan.computation().totalIterations();
    prof.totalCalls = plan.intrinsicCallCount();
    prof.intrinsicLatencyCycles = plan.intrinsic().latencyCycles;
    prof.intrinsicUnitsPerSubcore = plan.intrinsic().unitsPerSubcore;
    prof.intrinsicName = plan.intrinsic().name();
    for (const auto &group : plan.groups())
        if (group.members.size() > 1)
            prof.addressTerms +=
                static_cast<int>(group.members.size()) - 1;

    // Per-axis split: extent -> blockFactor x warpFactor x serial.
    std::vector<std::int64_t> block_seg(axes.size());
    std::vector<std::int64_t> serial(axes.size());
    for (std::size_t a = 0; a < axes.size(); ++a) {
        std::int64_t extent = axes[a].extent;
        std::int64_t bf = std::min(sched.axes[a].blockFactor, extent);
        require(bf >= 1, "lowerKernel: non-positive block factor");
        block_seg[a] = ceilDiv(extent, bf);
        std::int64_t wf =
            std::min(sched.axes[a].warpFactor, block_seg[a]);
        require(wf >= 1, "lowerKernel: non-positive warp factor");
        serial[a] = ceilDiv(block_seg[a], wf);
        bool reduction = axisIsReduction(plan, a);
        require(!reduction || (bf == 1 && wf == 1),
                "lowerKernel: reduction axis ", axes[a].name,
                " cannot be block/warp parallel");
        prof.numBlocks *= bf;
        prof.warpsPerBlock *= wf;
        prof.serialCallsPerWarp *= serial[a];
    }

    // Per-operand footprint and traffic.
    const auto &intr = plan.intrinsic();
    std::int64_t shared_bytes = 0;
    std::int64_t reg_bytes = 0;
    for (const auto &op : plan.operands()) {
        OperandProfile oprof;
        oprof.name = op.name;
        oprof.isOutput = op.isOutput;
        oprof.tileBytes = op.tileBytes;
        oprof.tilesTotal = op.numTiles;
        for (auto a : op.dependentAxes) {
            oprof.tilesPerBlock *= block_seg[a];
            oprof.tilesPerWarp *= serial[a];
        }
        oprof.tilesPerBlock =
            std::min(oprof.tilesPerBlock, oprof.tilesTotal);

        // Trailing-padding fraction along the operand's intrinsic
        // iterations: executed tile space vs real data.
        for (auto k : op.intrinsicIters) {
            const auto &group = plan.groups()[k];
            oprof.usefulFraction *=
                static_cast<double>(group.fusedExtent) /
                static_cast<double>(group.quotient *
                                    group.intrinsicExtent);
        }

        {
            const auto &comp = plan.computation();
            if (op.isOutput) {
                oprof.contiguousRun = contiguousRunOf(
                    plan, comp.output(), comp.outputIndices(), op);
            } else {
                const auto &in = comp.inputs()[op.inputIndex];
                oprof.contiguousRun =
                    contiguousRunOf(plan, in.decl, in.indices, op);
            }
        }

        if (op.isOutput) {
            // Accumulator tiles live in registers for the whole
            // warp-serial loop and are stored once; the store is
            // masked to the real region.
            reg_bytes += oprof.tilesPerWarp * op.tileBytes;
            prof.globalStoreBytesPerBlock += static_cast<std::int64_t>(
                oprof.tilesPerBlock * op.tileBytes *
                oprof.usefulFraction);
        } else {
            // Inputs are staged into shared memory one reduction
            // step at a time (spatial extent of the block tile), and
            // re-read from shared by each warp. The padded region is
            // zero-filled on chip, so only real bytes cross the
            // global interface.
            std::int64_t staged_tiles = 1;
            for (auto a : op.dependentAxes)
                if (!axisIsReduction(plan, a))
                    staged_tiles *= block_seg[a];
            shared_bytes +=
                staged_tiles * op.tileBytes * sched.stageDepth;
            // Live fragments per warp (current + prefetched).
            reg_bytes += op.tileBytes * sched.stageDepth;

            prof.globalLoadBytesPerBlock += static_cast<std::int64_t>(
                oprof.tilesPerBlock * op.tileBytes *
                oprof.usefulFraction);
            prof.sharedLoadBytesPerWarp +=
                oprof.tilesPerWarp * op.tileBytes;
        }
        prof.operands.push_back(std::move(oprof));
    }
    prof.sharedBytesPerBlock = shared_bytes;
    prof.regBytesPerWarp = reg_bytes;

    prof.fitsShared = shared_bytes <= hw.shared.capacityBytes;
    prof.fitsRegs = reg_bytes <= intr.regFileBytes;
    return prof;
}

Schedule
expertSchedule(const MappingPlan &plan, const HardwareSpec &hw)
{
    TraceSpan span("schedule.expert", "schedule");
    Schedule sched = defaultSchedule(plan);
    const auto &axes = plan.outerAxes();

    // Greedily bind spatial axes to blocks until every core has ~2
    // blocks, then give the largest remaining axis a few warps.
    std::int64_t target_blocks = 2LL * hw.numCores;
    std::int64_t blocks = 1;
    for (std::size_t a = 0; a < axes.size() && blocks < target_blocks;
         ++a) {
        if (axisIsReduction(plan, a))
            continue;
        std::int64_t want = std::min(
            axes[a].extent, ceilDiv(target_blocks, blocks));
        sched.axes[a].blockFactor = want;
        blocks *= want;
    }
    // Warp parallelism on the largest leftover spatial segment.
    std::size_t best_axis = axes.size();
    std::int64_t best_extent = 1;
    for (std::size_t a = 0; a < axes.size(); ++a) {
        if (axisIsReduction(plan, a))
            continue;
        std::int64_t seg =
            ceilDiv(axes[a].extent, sched.axes[a].blockFactor);
        if (seg > best_extent) {
            best_extent = seg;
            best_axis = a;
        }
    }
    if (best_axis < axes.size())
        sched.axes[best_axis].warpFactor = std::min<std::int64_t>(
            best_extent, hw.subcoresPerCore);

    sched.stageDepth = 2;
    sched.vectorLanes = 4;
    sched.unrollDepth = 2;
    return sched;
}

std::string
renderPseudoCode(const MappingPlan &plan, const Schedule &sched,
                 const HardwareSpec &hw)
{
    const auto &comp = plan.computation();
    const auto &intr = plan.intrinsic();
    const auto &axes = plan.outerAxes();
    auto prof = lowerKernel(plan, sched, hw);

    std::string out;
    out += "// " + comp.name() + " on " + hw.name + " via " +
           intr.name() + "\n";
    out += "// grid: " + std::to_string(prof.numBlocks) +
           " blocks x " + std::to_string(prof.warpsPerBlock) +
           " warps, " + std::to_string(prof.serialCallsPerWarp) +
           " serial calls/warp\n";
    std::string indent;
    for (std::size_t a = 0; a < axes.size(); ++a) {
        const auto &ax = axes[a];
        std::string binding;
        if (sched.axes[a].blockFactor > 1)
            binding += " // bind blockIdx";
        if (sched.axes[a].warpFactor > 1)
            binding += " bind warpIdx";
        out += indent + "for " + ax.name + " in [0, " +
               std::to_string(ax.extent) + ")" + binding + "\n";
        indent += "  ";
    }
    for (const auto &stmt : intr.memory.statements()) {
        if (stmt.operand == intr.compute.dst().name)
            continue;
        out += indent + std::string(memScopeName(stmt.dstScope)) +
               "." + stmt.operand + " = " +
               memScopeName(stmt.srcScope) + "." + stmt.operand +
               "[addr, stride]  // stage " +
               std::to_string(sched.stageDepth) + "-deep, vec " +
               std::to_string(sched.vectorLanes) + "\n";
    }
    out += indent + intr.name() + "(" +
           plan.computeMappingString() + ")\n";
    out += indent + "global." + intr.compute.dst().name +
           " = reg." + intr.compute.dst().name + "\n";
    return out;
}

} // namespace amos
