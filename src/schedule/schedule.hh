/**
 * @file
 * Schedule description (Table 3a of the AMOS paper: tile, fuse, bind,
 * parallel, cache, unroll/vectorize).
 *
 * A schedule refines the outer loop nest left by a mapping: each
 * outer axis splits into a core-parallel (bind) factor, a sub-core
 * (warp) factor, and a serial remainder; global knobs select the
 * software-pipelining depth (cache double buffering), the memory
 * vectorisation width, and the unroll depth. Reduction axes can only
 * be serial — binding them would require cross-core reduction.
 */

#ifndef AMOS_SCHEDULE_SCHEDULE_HH
#define AMOS_SCHEDULE_SCHEDULE_HH

#include <cstdint>
#include <string>
#include <vector>

#include "mapping/mapping.hh"
#include "support/rng.hh"

namespace amos {

/** Split factors of one outer axis. */
struct AxisSchedule
{
    std::int64_t blockFactor = 1; ///< segments bound to cores
    std::int64_t warpFactor = 1;  ///< segments bound to sub-cores
};

/** A complete schedule for one mapped kernel. */
struct Schedule
{
    /// One entry per MappingPlan outer axis, same order.
    std::vector<AxisSchedule> axes;

    /// Software-pipelining depth for shared staging (1 = none,
    /// 2 = double buffering).
    int stageDepth = 1;

    /// Vector width (elements) of shared<->register transfers.
    int vectorLanes = 1;

    /// Unroll depth of the innermost serial loop.
    int unrollDepth = 1;

    std::string toString() const;
};

/** True iff an outer axis iterates a reduction dimension. */
bool axisIsReduction(const MappingPlan &plan, std::size_t axis);

/** The trivial schedule: everything serial on one core. */
Schedule defaultSchedule(const MappingPlan &plan);

/**
 * Sample a random legal schedule for a plan: block/warp factors from
 * the axis extents' tile candidates (spatial axes only), random
 * pipeline/vector/unroll knobs.
 */
Schedule sampleSchedule(const MappingPlan &plan, Rng &rng);

/**
 * Mutate one knob of a schedule (genetic-algorithm step). Returns a
 * modified copy.
 */
Schedule mutateSchedule(const MappingPlan &plan, const Schedule &sched,
                        Rng &rng);

/**
 * Crossover of two schedules for the same plan: each axis and each
 * global knob is inherited from a random parent.
 */
Schedule crossoverSchedules(const Schedule &a, const Schedule &b,
                            Rng &rng);

} // namespace amos

#endif // AMOS_SCHEDULE_SCHEDULE_HH
