/**
 * @file
 * Mapping explorer: a walkthrough of the paper's Fig. 3 running
 * example. Maps a small 2D convolution onto the teaching 2x2x2
 * Tensor Core, enumerates every valid mapping, shows the matching
 * matrices and the virtual vs physical mapping expressions, and
 * proves functional equivalence of each mapping against the
 * reference interpreter.
 *
 * Run: ./build/examples/mapping_explorer
 */

#include <cstdio>

#include "isa/intrinsics.hh"
#include "mapping/execute.hh"
#include "mapping/generate.hh"
#include "ops/operators.hh"

int
main()
{
    using namespace amos;

    // The Fig. 3 convolution: batch 1, 1 input channel, 4 output
    // channels, 2x2 output, 3x3 kernel.
    ops::ConvParams params;
    params.batch = 1;
    params.in_channels = 1;
    params.out_channels = 4;
    params.out_h = 2;
    params.out_w = 2;
    params.kernel_h = 3;
    params.kernel_w = 3;
    auto conv = ops::makeConv2d(params);
    auto intr = isa::wmmaTiny(); // the paper's 2x2x2 Tensor Core

    std::printf("software:\n%s\n", conv.toString().c_str());
    std::printf("intrinsic: %s\n\n",
                intr.compute.toString().c_str());

    std::printf("software access matrix X:\n%s\n",
                softwareAccessMatrix(conv).toString().c_str());
    std::printf("intrinsic access matrix Z:\n%s\n",
                intr.compute.accessMatrix().toString().c_str());
    std::printf("compatibility (intrinsic x software):\n%s\n",
                compatibilityMatrix(conv, intr.compute)
                    .toString()
                    .c_str());

    auto plans = enumeratePlans(conv, intr, {});
    std::printf("valid mappings found: %zu (paper: 35)\n\n",
                plans.size());

    // Detail the paper's featured mapping: n,p,q | k | c,r,s.
    for (const auto &plan : plans) {
        if (plan.mapping().signature(conv) != "[n,p,q | k | c,r,s]")
            continue;
        std::printf("featured mapping %s\n",
                    plan.mapping().signature(conv).c_str());
        std::printf("  matching matrix Y:\n%s",
                    plan.matchingMatrix().toString().c_str());
        auto virtual_exprs = plan.virtualComputeExprs();
        std::printf("  virtual mapping (no constraints):\n");
        for (std::size_t k = 0; k < virtual_exprs.size(); ++k)
            std::printf("    %s <- %s\n",
                        intr.compute.iters()[k].name.c_str(),
                        exprToString(virtual_exprs[k]).c_str());
        std::printf("  physical mapping (problem-size mod):\n    %s\n",
                    plan.computeMappingString().c_str());
        std::printf("  memory mapping:\n%s", plan
                        .memoryMappingString()
                        .c_str());
        std::printf("  intrinsic calls: %lld (2 x 2 x 5 as in"
                    " Fig. 3)\n",
                    static_cast<long long>(plan.intrinsicCallCount()));
    }

    // Every mapping must be functionally exact.
    std::printf("\nfunctional check of every mapping:\n");
    int exact = 0;
    for (const auto &plan : plans)
        exact += mappedVsReferenceError(plan) < 1e-4f;
    std::printf("  %d / %zu mappings reproduce the reference"
                " interpreter exactly\n",
                exact, plans.size());
    return 0;
}
