/**
 * @file
 * End-to-end network compilation: compile ResNet-18 with AMOS and
 * with the PyTorch library proxy on the V100-like accelerator,
 * compare per-operator and total latency, and show which mappings
 * were selected — the Sec. 7.4 experiment in miniature.
 *
 * Run: ./build/examples/network_compile
 */

#include <cstdio>

#include "amos/amos.hh"
#include "support/str_utils.hh"

int
main()
{
    using namespace amos;

    auto net = resnet18(16);
    auto target = hw::v100();

    NetworkCompileOptions options;
    options.tuning.generations = 6;
    options.tuning.maxMappings = 16;

    auto torch_result = compileNetwork(
        net, target, NetworkCompiler::PyTorch, options);
    auto amos_result =
        compileNetwork(net, target, NetworkCompiler::Amos, options);

    TextTable table({"op", "count", "pytorch ms", "amos ms",
                     "speedup", "amos mapping"});
    for (std::size_t i = 0; i < net.ops.size(); ++i) {
        const auto &t = torch_result.ops[i];
        const auto &a = amos_result.ops[i];
        table.addRow(
            {a.label, std::to_string(a.count),
             fmtDouble(t.msPerInstance, 4),
             fmtDouble(a.msPerInstance, 4),
             fmtDouble(t.msPerInstance /
                           std::max(a.msPerInstance, 1e-12),
                       2),
             a.mappingSignature.empty() ? "(scalar)"
                                        : a.mappingSignature});
    }
    std::printf("%s\n", table.toString().c_str());
    std::printf("PyTorch proxy: %.3f ms | AMOS: %.3f ms | "
                "end-to-end speedup %.2fx\n",
                torch_result.totalMs, amos_result.totalMs,
                torch_result.totalMs / amos_result.totalMs);
    std::printf("AMOS mapped %d of %d ops to Tensor Core "
                "(PyTorch proxy: %d).\n",
                amos_result.mappedOps, amos_result.totalOps,
                torch_result.mappedOps);
    return 0;
}
