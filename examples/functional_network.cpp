/**
 * @file
 * Functional end-to-end inference: a small CNN (conv -> ReLU ->
 * depthwise conv -> ReLU -> classifier) is compiled layer by layer
 * with AMOS and *numerically executed* through the mapped kernels
 * (the packed-tile executor that exercises the generated base
 * address and stride arithmetic), then checked bit-for-bit against
 * the reference interpreter.
 *
 * Run: ./build/examples/functional_network
 */

#include <cmath>
#include <cstdio>

#include "amos/amos.hh"
#include "mapping/execute.hh"
#include "tensor/reference.hh"

namespace {

using namespace amos;

/** In-place ReLU: one of the elementwise ops AMOS does not map. */
void
relu(Buffer &buf)
{
    for (std::size_t i = 0; i < buf.size(); ++i)
        buf.data()[i] = std::max(buf.data()[i], 0.0f);
}

/** Tune a layer and execute it through the mapped (packed) path. */
Buffer
runMapped(const Compiler &compiler, const TensorComputation &comp,
          const std::vector<const Buffer *> &inputs,
          const char *label)
{
    auto result = compiler.compile(comp);
    expect(result.tensorized && result.tuning.bestPlan,
           label, ": expected a tensorized mapping");
    const auto &plan = *result.tuning.bestPlan;
    Buffer out(comp.output());
    executeMappedPacked(plan, inputs, out);
    std::printf("  %-12s mapped as %-22s (%zu mappings explored)\n",
                label, result.mappingSignature.c_str(),
                result.mappingsExplored);
    return out;
}

} // namespace

int
main()
{
    using namespace amos;

    // A teaching-sized target so exploration and execution are
    // instant; the mapping machinery is identical at any scale.
    auto target = hw::v100();
    target.intrinsics = {isa::wmma(4, 4, 4)};
    TuneOptions options;
    options.generations = 3;
    options.maxMappings = 12;
    Compiler compiler(target, options);

    // --- The model ---
    ops::ConvParams conv1_p;
    conv1_p.batch = 1;
    conv1_p.in_channels = 3;
    conv1_p.out_channels = 8;
    conv1_p.out_h = conv1_p.out_w = 6;
    conv1_p.kernel_h = conv1_p.kernel_w = 3;
    auto conv1 = ops::makeConv2d(conv1_p);

    ops::ConvParams dw_p;
    dw_p.batch = 1;
    dw_p.in_channels = 8;
    dw_p.out_h = dw_p.out_w = 4;
    dw_p.kernel_h = dw_p.kernel_w = 3;
    auto dwconv = ops::makeDepthwiseConv2d(dw_p, 1);

    auto classifier = ops::makeGemv(10, 8 * 4 * 4);

    // --- Parameters and input ---
    Buffer image(conv1.inputs()[0].decl);
    Buffer w1(conv1.inputs()[1].decl);
    Buffer w2(dwconv.inputs()[1].decl);
    Buffer w3(classifier.inputs()[0].decl);
    image.fillPattern(1);
    w1.fillPattern(2);
    w2.fillPattern(3);
    w3.fillPattern(4);

    std::printf("executing through AMOS-mapped kernels:\n");

    // --- Mapped inference ---
    auto act1 = runMapped(compiler, conv1, {&image, &w1}, "conv1");
    relu(act1);
    // The depthwise layer reads act1 directly: its implied input
    // shape (1, 8, 6, 6) is exactly conv1's output shape.
    auto act2 = runMapped(compiler, dwconv, {&act1, &w2}, "dwconv");
    relu(act2);
    // Flatten into the classifier's vector operand.
    Buffer flat(classifier.inputs()[1].decl);
    for (std::size_t i = 0; i < flat.size(); ++i)
        flat.set(static_cast<std::int64_t>(i),
                 act2.at(static_cast<std::int64_t>(i)));
    auto logits =
        runMapped(compiler, classifier, {&w3, &flat}, "classifier");

    // --- Reference inference ---
    Buffer r1(conv1.output());
    referenceExecute(conv1, {&image, &w1}, r1);
    relu(r1);
    Buffer r2(dwconv.output());
    referenceExecute(dwconv, {&r1, &w2}, r2);
    relu(r2);
    Buffer rflat(classifier.inputs()[1].decl);
    for (std::size_t i = 0; i < rflat.size(); ++i)
        rflat.set(static_cast<std::int64_t>(i),
                  r2.at(static_cast<std::int64_t>(i)));
    Buffer rlogits(classifier.output());
    referenceExecute(classifier, {&w3, &rflat}, rlogits);

    float err = logits.maxAbsDiff(rlogits);
    std::printf("\nlogits (mapped | reference):\n");
    for (std::int64_t c = 0; c < 10; ++c)
        std::printf("  class %lld: %+.5f | %+.5f\n",
                    static_cast<long long>(c), logits.at(c),
                    rlogits.at(c));
    std::printf("\nmax deviation: %.2e -> %s\n", err,
                err < 1e-4f ? "EXACT" : "MISMATCH");
    return err < 1e-4f ? 0 : 1;
}
