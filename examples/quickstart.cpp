/**
 * @file
 * Quickstart: compile one operator with AMOS and inspect the result.
 *
 * Build & run:
 *   cmake -B build -G Ninja && cmake --build build
 *   ./build/examples/quickstart
 *
 * The flow mirrors Fig. 2 of the paper: define the software (a 2D
 * convolution), pick a hardware target (the V100-like Tensor Core
 * accelerator), and let the compiler enumerate, validate, and explore
 * software-hardware mappings before reporting the winner.
 */

#include <cstdio>

#include "amos/amos.hh"

int
main()
{
    using namespace amos;

    // 1. The software definition: a ResNet-style 2D convolution.
    ops::ConvParams params;
    params.batch = 16;
    params.in_channels = 128;
    params.out_channels = 128;
    params.out_h = 28;
    params.out_w = 28;
    params.kernel_h = 3;
    params.kernel_w = 3;
    auto conv = ops::makeConv2d(params);
    std::printf("software definition:\n%s\n",
                conv.toString().c_str());

    // 2. The hardware target and its intrinsic, described through
    //    the hardware abstraction.
    auto target = hw::v100();
    std::printf("hardware: %s\n", target.toString().c_str());
    std::printf("compute abstraction:\n  %s\n\n",
                target.primaryIntrinsic().compute.toString().c_str());

    // 3. Compile: mapping generation -> validation -> exploration.
    Compiler compiler(target);
    auto result = compiler.compile(conv);

    std::printf("compilation result:\n%s\n",
                result.report().c_str());
    std::printf("memory mapping:\n%s\n",
                result.memoryMapping.c_str());
    std::printf("generated kernel sketch:\n%s\n",
                result.pseudoCode.c_str());
    return 0;
}
