/**
 * @file
 * Bring-your-own accelerator: define a brand-new spatial intrinsic
 * through the hardware abstraction, wrap it into a hardware spec,
 * and compile a real operator on it without writing any template —
 * the Sec. 7.5 generality story.
 *
 * The custom unit below is an "outer-product engine": it computes
 * Dst[i1, i2] += Src1[i1] * Src2[i2] over an 8x8 tile (a rank-1
 * update, as in some analog in-memory-compute proposals).
 *
 * Run: ./build/examples/custom_accelerator
 */

#include <cstdio>

#include "amos/amos.hh"

int
main()
{
    using namespace amos;

    // 1. Compute abstraction: name the intrinsic iterations, their
    //    extents (problem size), and each operand's index list.
    ComputeAbstraction compute(
        "outer_product_8x8",
        {{"i1", 8, false}, {"i2", 8, false}},
        {{"Src1", {0}, DataType::F16}, {"Src2", {1}, DataType::F16}},
        {"Dst", {0, 1}, DataType::F32});

    // 2. Memory abstraction: where each operand is staged.
    MemoryAbstraction memory({
        {"Src1", MemScope::Reg, MemScope::Shared},
        {"Src2", MemScope::Reg, MemScope::Shared},
        {"Dst", MemScope::Global, MemScope::Reg},
    });

    Intrinsic outer{std::move(compute), std::move(memory)};
    outer.latencyCycles = 4.0;
    outer.unitsPerSubcore = 2;
    outer.regFileBytes = 32 * 1024;

    // 3. A hardware spec around the intrinsic.
    HardwareSpec accel;
    accel.name = "OuterProductAccel";
    accel.numCores = 24;
    accel.subcoresPerCore = 2;
    accel.clockGhz = 1.2;
    accel.global = {"global", 0, 256.0, 256.0};
    accel.shared = {"shared", 64 * 1024, 64.0, 32.0};
    accel.reg = {"reg", 32 * 1024, 128.0, 128.0};
    accel.launchOverheadCycles = 1500.0;
    accel.maxBlocksPerCore = 8;
    accel.scalarLanesPerCore = 8;
    accel.intrinsics = {outer};
    std::printf("%s\n", accel.toString().c_str());

    // 4. Compile real workloads on it. An outer-product engine has
    //    no reduction iteration, so only rank-1-style computations
    //    map; watch which operators do.
    Compiler compiler(accel);

    struct Case
    {
        const char *name;
        TensorComputation comp;
    };
    std::vector<Case> cases;
    // A genuine rank-1 update: out[i,j] += a[i] * b[j].
    {
        IterVar i{Var("i"), 64, IterKind::Spatial};
        IterVar j{Var("j"), 96, IterKind::Spatial};
        TensorDecl a("a", {64});
        TensorDecl b("b", {96});
        TensorDecl out("out", {64, 96});
        cases.push_back(
            {"rank1_update",
             TensorComputation("rank1", {i, j}, out, {i.var, j.var},
                               {{a, {i.var}}, {b, {j.var}}})});
    }
    cases.push_back({"gemm_256", ops::makeGemm(256, 256, 256)});

    for (auto &c : cases) {
        std::printf("--- %s ---\n", c.name);
        auto mappings = compiler.countMappings(c.comp);
        std::printf("valid mappings: %zu\n", mappings);
        auto result = compiler.compile(c.comp);
        std::printf("%s\n", result.report().c_str());
    }

    std::printf(
        "Both operators tensorize with no hand-written template\n"
        "anywhere: the rank-1 update maps directly, and Algorithm 1\n"
        "discovers that GEMM maps as a *sequence* of rank-1 updates\n"
        "(the reduction iterator k stays an outer serial loop that\n"
        "accumulates into the Dst tile) - exactly how outer-product\n"
        "engines execute matrix multiplication.\n");
    return 0;
}
