/**
 * @file
 * amos_cli — command-line front end to the compiler.
 *
 * Compile an operator for a modelled accelerator, optionally through
 * a persistent tuning cache, list its valid mappings, or emit the
 * generated C kernel.
 *
 * Examples:
 *   amos_cli --op conv2d --batch 16 --cin 128 --cout 128 \
 *            --size 28 --kernel 3 --hw v100
 *   amos_cli --op gemm --m 512 --n 512 --k 512 --hw a100 \
 *            --cache /tmp/tuning.json --threads 8
 *   amos_cli --op gemm --m 256 --n 256 --k 256 --hw v100 --json \
 *       | jq .result.gflops
 *   amos_cli --op depthwise --batch 1 --cin 128 --size 28 \
 *            --kernel 3 --hw mali --list-mappings
 *   amos_cli --op conv2d --batch 2 --cin 4 --cout 8 --size 4 \
 *            --kernel 3 --hw v100 --emit-c /tmp/kernel.c
 *   amos_cli --op conv2d --size 14 --hw v100 \
 *            --trace-out /tmp/trace.json   # Chrome/Perfetto trace
 *   amos_cli --op conv2d --size 14 --hw v100 \
 *            --flight-dump /tmp/flight.json  # flight-recorder dump
 *   amos_cli --op conv2d --size 14 --hw v100 \
 *            --explain-out /tmp/explain.json   # bottleneck report
 *   amos_cli --op gemv --m 1024 --k 1024 --hw v100 --explain
 *   amos_cli --op gemm --m 64 --n 64 --k 64 --hw v100 \
 *            --engine jit --json | jq .engine   # "jit"
 *   amos_cli --op gemm --m 256 --n 256 --k 256 --hw xeon \
 *            --dtype u8i8   # int8 GEMM on the VNNI intrinsic
 *   amos_cli --op conv2d --size 14 --hw mali --dtype i8
 *   amos_cli --op gemm --m 320 --n 64 --k 64 --hw v100 \
 *            --cache /tmp/tuning.json --warm-start neighbors
 *   amos_cli --op gemm --m 256 --n 256 --k 256 --hw v100 \
 *            --model-snapshot /tmp/model.json   # trained screen
 *
 * --warm-start off|neighbors|model|both seeds the exploration from
 * the nearest cached winners (neighbors modes need --cache) and/or
 * screens with a pre-trained model; --model-snapshot FILE loads the
 * snapshot (and implies a model mode). See docs/exploration.md.
 *
 * --dtype selects the operand typing (f16 default, f32, bf16, i8,
 * u8i8); quantized typings accumulate exactly into i32 and only
 * match dtype-legal intrinsics (docs/abstraction.md).
 *
 * Scripting contract:
 *   --json writes a single machine-readable object to stdout (the
 *   same schema as one amos_served response line); human chatter
 *   goes to stderr. The envelope always carries an "engine" field:
 *   the functional-simulator tier that verified the tuned mapping
 *   ("jit", "walk" or "interpreter"), or "none" when verification
 *   was skipped. Exit codes: 0 success, 1 compile/config error,
 *   2 bad usage, 3 the operator could not be tensorized and
 *   --require-tensorized was given, 4 an output path (--trace-out,
 *   --flight-dump, --explain-out, --telemetry-out, --emit-c) is
 *   not writable.
 */

#include <cstdio>
#include <cstring>
#include <fstream>
#include <map>
#include <optional>

#include "amos/amos.hh"
#include "codegen/codegen.hh"
#include "explore/trace_io.hh"
#include "mapping/execute.hh"
#include "mapping/generate.hh"
#include "report/explain.hh"
#include "serve/protocol.hh"
#include "support/flight_recorder.hh"
#include "support/trace.hh"

namespace {

using namespace amos;

/** An output file the user named cannot be written (exit code 4). */
class IoError : public std::runtime_error
{
  public:
    explicit IoError(const std::string &msg)
        : std::runtime_error(msg)
    {}
};

/**
 * Fail fast on an unwritable output path *before* spending the
 * exploration: probing in append mode creates missing files without
 * truncating existing ones.
 */
void
requireWritable(const std::string &path, const char *flagName)
{
    if (path.empty())
        return;
    std::ofstream probe(path, std::ios::app);
    if (!probe.good())
        throw IoError(std::string(flagName) + ": cannot open '" +
                      path + "' for writing");
}

void
writeFileOrThrow(const std::string &path,
                 const std::string &content, const char *flagName)
{
    std::ofstream out(path);
    out << content;
    out.flush();
    if (!out.good())
        throw IoError(std::string(flagName) + ": failed writing '" +
                      path + "'");
}

struct Args
{
    std::map<std::string, std::string> values;

    std::int64_t
    num(const std::string &key, std::int64_t fallback) const
    {
        auto it = values.find(key);
        return it == values.end() ? fallback
                                  : std::stoll(it->second);
    }

    std::string
    str(const std::string &key, const std::string &fallback) const
    {
        auto it = values.find(key);
        return it == values.end() ? fallback : it->second;
    }

    bool
    flag(const std::string &key) const
    {
        return values.count(key) > 0;
    }
};

/**
 * The CLI describes the same compilations as the serve protocol;
 * building a CompileRequest keeps operator construction and dim
 * defaults in one place (serve::computationFromRequest).
 */
serve::CompileRequest
requestFromArgs(const Args &args)
{
    serve::CompileRequest req;
    req.op = args.str("op", "conv2d");
    req.hw = args.str("hw", "v100");
    req.dtype = args.str("dtype", "f16");
    for (const char *key :
         {"batch", "cin", "cout", "size", "kernel", "stride",
          "dilation", "m", "n", "k", "depth", "kdepth",
          "multiplier", "groups"}) {
        auto it = args.values.find(key);
        if (it != args.values.end())
            req.dims[key] = std::stoll(it->second);
    }
    req.generations =
        static_cast<int>(args.num("generations", 8));
    req.seed = static_cast<std::uint64_t>(args.num("seed", 2022));
    // Exploration worker threads; the tuned result is identical for
    // every value (0 = one per hardware thread).
    req.numThreads = static_cast<int>(args.num("threads", 0));
    req.warmStart = args.str("warm-start", "");
    return req;
}

int
runCli(const Args &args)
{
    auto req = requestFromArgs(args);
    auto hw = serve::hardwareFromRequest(req);
    auto comp = serve::computationFromRequest(req);
    bool json = args.flag("json");

    // --trace-out FILE: record the whole compilation as a Chrome
    // trace-event document (load in Perfetto or chrome://tracing).
    std::string trace_path = args.str("trace-out", "");
    if (!trace_path.empty())
        Tracer::global().setEnabled(true);

    // Output paths are probed before the exploration runs: a typo'd
    // directory should cost milliseconds, not the whole tune.
    std::string explain_path = args.str("explain-out", "");
    std::string telemetry_path = args.str("telemetry-out", "");
    std::string emit_path = args.str("emit-c", "");
    std::string flight_path = args.str("flight-dump", "");
    requireWritable(trace_path, "--trace-out");
    requireWritable(explain_path, "--explain-out");
    requireWritable(telemetry_path, "--telemetry-out");
    requireWritable(emit_path, "--emit-c");
    requireWritable(flight_path, "--flight-dump");

    // --flight-dump FILE: run the compilation under a flight-
    // recorder scope (exactly what the serve layer does per
    // request) and dump the rings afterwards.
    std::optional<FlightScope> flight_scope;
    if (!flight_path.empty())
        flight_scope.emplace(
            FlightRecorder::global().beginRequest());

    if (!json) {
        std::printf("%s", comp.toString().c_str());
        std::printf("target: %s\n\n", hw.name.c_str());
    }

    TuneOptions tune_options = serve::tuneOptionsFromRequest(req);
    // --model-snapshot FILE: screen with a pre-trained model from
    // generation 0. An unloadable snapshot is a hard error here —
    // the user asked for it by name — unlike the serve layer, which
    // degrades to analytic screening.
    std::string model_path = args.str("model-snapshot", "");
    if (!model_path.empty()) {
        auto loaded = LearnedModel::loadFile(model_path);
        if (!loaded)
            throw std::runtime_error(
                "--model-snapshot: cannot load '" + model_path +
                "' (unreadable, unparseable, or wrong schema)");
        tune_options.warmStart.model =
            std::make_shared<const LearnedModel>(
                std::move(*loaded));
        if (!warmStartUsesModel(tune_options.warmStart.mode))
            tune_options.warmStart.mode =
                tune_options.warmStart.mode ==
                        WarmStartMode::Neighbors
                    ? WarmStartMode::Both
                    : WarmStartMode::Model;
    }
    Compiler compiler(hw, tune_options);

    if (args.flag("list-mappings")) {
        for (const auto &intr : hw.intrinsics) {
            if (comp.inputs().size() != intr.compute.numSrcs() ||
                comp.combine() != intr.compute.combine())
                continue;
            auto plans = enumeratePlans(comp, intr, {});
            std::printf("%s: %zu valid mappings\n",
                        intr.name().c_str(), plans.size());
            for (const auto &plan : plans)
                std::printf("  %s\n",
                            plan.mapping()
                                .signature(comp)
                                .c_str());
        }
        return 0;
    }

    CompileResult result;
    std::string cache_path = args.str("cache", "");
    if (!cache_path.empty()) {
        auto cache = TuningCache::loadFileIfExists(cache_path);
        result = compiler.compileWithCache(comp, cache);
        cache.saveFile(cache_path);
        std::fprintf(stderr, "tuning cache: %s (%zu entries)\n",
                     cache_path.c_str(), cache.size());
    } else {
        result = compiler.compile(comp);
    }

    bool want_explain =
        args.flag("explain") || !explain_path.empty();
    std::optional<report::ExplainReport> explain;
    if (want_explain)
        explain = report::explainResult(result, comp, hw);

    // --engine auto|interpreter|walk|jit: differentially verify the
    // tuned mapping on the functional simulator's requested tier.
    // Without the flag, small operators (<= 2^25 iterations) are
    // verified on the default tier for free; huge ones are skipped.
    const std::string engine_name = args.str("engine", "");
    ExecEngine engine = ExecEngine::Auto;
    if (!engine_name.empty()) {
        auto parsed = parseExecEngine(engine_name);
        if (!parsed)
            throw std::runtime_error(
                "--engine: unknown engine '" + engine_name +
                "' (expected auto|interpreter|walk|jit)");
        engine = *parsed;
    }
    const bool verify =
        result.tensorized && result.tuning.bestPlan &&
        (!engine_name.empty() ||
         comp.totalIterations() <= (std::int64_t{1} << 25));
    std::string engine_used = "none";
    std::string jit_fallback;
    float exec_diff = 0.0f;
    if (verify) {
        ExecReport direct;
        exec_diff = engineVsInterpreterError(
            *result.tuning.bestPlan, engine, req.seed, &direct);
        engine_used = direct.engine;
        jit_fallback = direct.jitFallback;
    }

    if (json) {
        Json out = Json::object();
        out.set("ok", Json(true));
        out.set("engine", Json(engine_used));
        if (!jit_fallback.empty())
            out.set("jit_fallback", Json(jit_fallback));
        if (verify)
            out.set("exec_max_abs_diff",
                    Json(static_cast<double>(exec_diff)));
        out.set("result", serve::compileResultToJson(result));
        if (explain)
            out.set("explain", report::explainToJson(*explain));
        std::printf("%s\n", out.dump().c_str());
    } else {
        std::printf("%s", result.report().c_str());
        if (verify)
            std::printf("functional check: engine=%s "
                        "max|diff|=%g%s%s\n",
                        engine_used.c_str(),
                        static_cast<double>(exec_diff),
                        jit_fallback.empty() ? "" : " — ",
                        jit_fallback.c_str());
        if (args.flag("explain"))
            std::printf("\n%s",
                        report::explainToText(*explain).c_str());
    }

    if (!explain_path.empty()) {
        writeFileOrThrow(explain_path,
                         report::explainToJson(*explain).dump(),
                         "--explain-out");
        std::fprintf(stderr, "wrote explain report to %s\n",
                     explain_path.c_str());
    }
    if (!telemetry_path.empty()) {
        writeFileOrThrow(telemetry_path,
                         telemetryToCsv(result.tuning.telemetry),
                         "--telemetry-out");
        std::fprintf(stderr, "wrote search telemetry to %s\n",
                     telemetry_path.c_str());
    }

    if (!emit_path.empty()) {
        expect(result.tensorized && result.tuning.bestPlan,
               "--emit-c requires a tensorized result");
        CodegenOptions cg;
        cg.kernelName = "amos_kernel";
        std::ofstream out(emit_path);
        out << generateC(*result.tuning.bestPlan,
                         result.tuning.bestSchedule, cg);
        std::fprintf(stderr, "wrote C kernel to %s\n",
                     emit_path.c_str());
    }

    if (!trace_path.empty()) {
        Tracer::global().writeFile(trace_path);
        std::fprintf(stderr, "wrote %zu trace spans to %s\n",
                     Tracer::global().spanCount(),
                     trace_path.c_str());
    }

    if (!flight_path.empty()) {
        writeFileOrThrow(
            flight_path,
            FlightRecorder::global().dumpJson().dump() + "\n",
            "--flight-dump");
        std::fprintf(stderr,
                     "wrote %zu flight records to %s\n",
                     FlightRecorder::global().recordCount(),
                     flight_path.c_str());
    }

    if (args.flag("require-tensorized") && !result.tensorized)
        return 3;
    return 0;
}

} // namespace

int
main(int argc, char **argv)
{
    Args args;
    for (int i = 1; i < argc; ++i) {
        const char *arg = argv[i];
        if (std::strncmp(arg, "--", 2) != 0) {
            std::fprintf(stderr, "unexpected argument '%s'\n", arg);
            return 2;
        }
        std::string key = arg + 2;
        if (i + 1 < argc && std::strncmp(argv[i + 1], "--", 2) != 0)
            args.values[key] = argv[++i];
        else
            args.values[key] = "1";
    }
    auto jsonError = [&args](const char *code, const char *what) {
        if (!args.flag("json"))
            return;
        // Machine-readable failure on stdout, matching the serve
        // protocol's error envelope.
        amos::Json err = amos::Json::object();
        err.set("code", amos::Json(code));
        err.set("message", amos::Json(what));
        amos::Json out = amos::Json::object();
        out.set("ok", amos::Json(false));
        out.set("error", std::move(err));
        std::printf("%s\n", out.dump().c_str());
    };
    try {
        return runCli(args);
    } catch (const IoError &e) {
        jsonError("io_error", e.what());
        std::fprintf(stderr, "%s\n", e.what());
        return 4;
    } catch (const std::exception &e) {
        jsonError("bad_request", e.what());
        std::fprintf(stderr, "%s\n", e.what());
        return 1;
    }
}
