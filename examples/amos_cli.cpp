/**
 * @file
 * amos_cli — command-line front end to the compiler.
 *
 * Compile an operator for a modelled accelerator, optionally through
 * a persistent tuning cache, list its valid mappings, or emit the
 * generated C kernel.
 *
 * Examples:
 *   amos_cli --op conv2d --batch 16 --cin 128 --cout 128 \
 *            --size 28 --kernel 3 --hw v100
 *   amos_cli --op gemm --m 512 --n 512 --k 512 --hw a100 \
 *            --cache /tmp/tuning.json --threads 8
 *   amos_cli --op depthwise --batch 1 --cin 128 --size 28 \
 *            --kernel 3 --hw mali --list-mappings
 *   amos_cli --op conv2d --batch 2 --cin 4 --cout 8 --size 4 \
 *            --kernel 3 --hw v100 --emit-c /tmp/kernel.c
 */

#include <cstdio>
#include <cstring>
#include <fstream>
#include <map>

#include "amos/amos.hh"
#include "codegen/codegen.hh"
#include "mapping/generate.hh"

namespace {

using namespace amos;

struct Args
{
    std::map<std::string, std::string> values;

    std::int64_t
    num(const std::string &key, std::int64_t fallback) const
    {
        auto it = values.find(key);
        return it == values.end() ? fallback
                                  : std::stoll(it->second);
    }

    std::string
    str(const std::string &key, const std::string &fallback) const
    {
        auto it = values.find(key);
        return it == values.end() ? fallback : it->second;
    }

    bool
    flag(const std::string &key) const
    {
        return values.count(key) > 0;
    }
};

HardwareSpec
pickHardware(const std::string &name)
{
    if (name == "v100")
        return hw::v100();
    if (name == "a100")
        return hw::a100();
    if (name == "xeon")
        return hw::xeonSilver4110();
    if (name == "mali")
        return hw::maliG76();
    if (name == "vaxpy")
        return hw::virtualAxpyAccel();
    if (name == "vgemv")
        return hw::virtualGemvAccel();
    if (name == "vconv")
        return hw::virtualConvAccel();
    fatal("unknown --hw '", name,
          "' (v100|a100|xeon|mali|vaxpy|vgemv|vconv)");
}

TensorComputation
pickOperator(const Args &args)
{
    std::string op = args.str("op", "conv2d");
    ops::ConvParams pr;
    pr.batch = args.num("batch", 1);
    pr.in_channels = args.num("cin", 64);
    pr.out_channels = args.num("cout", 64);
    pr.out_h = pr.out_w = args.num("size", 14);
    pr.kernel_h = pr.kernel_w = args.num("kernel", 3);
    pr.stride = args.num("stride", 1);
    pr.dilation = args.num("dilation", 1);

    if (op == "gemm")
        return ops::makeGemm(args.num("m", 256), args.num("n", 256),
                             args.num("k", 256));
    if (op == "gemv")
        return ops::makeGemv(args.num("m", 1024),
                             args.num("k", 1024));
    if (op == "conv1d")
        return ops::makeConv1d(pr.batch, pr.in_channels,
                               pr.out_channels, args.num("size", 64),
                               pr.kernel_h, pr.stride);
    if (op == "conv2d")
        return ops::makeConv2d(pr);
    if (op == "conv3d")
        return ops::makeConv3d(pr, args.num("depth", 8),
                               args.num("kdepth", 3));
    if (op == "depthwise")
        return ops::makeDepthwiseConv2d(pr,
                                        args.num("multiplier", 1));
    if (op == "group")
        return ops::makeGroupConv2d(pr, args.num("groups", 4));
    if (op == "dilated")
        return ops::makeDilatedConv2d(pr);
    if (op == "transposed")
        return ops::makeTransposedConv2d(pr);
    fatal("unknown --op '", op, "'");
}

int
runCli(const Args &args)
{
    auto hw = pickHardware(args.str("hw", "v100"));
    auto comp = pickOperator(args);

    std::printf("%s", comp.toString().c_str());
    std::printf("target: %s\n\n", hw.name.c_str());

    TuneOptions options;
    options.generations =
        static_cast<int>(args.num("generations", 8));
    options.seed =
        static_cast<std::uint64_t>(args.num("seed", 2022));
    // Exploration worker threads; the tuned result is identical for
    // every value (0 = one per hardware thread).
    options.numThreads =
        static_cast<int>(args.num("threads", 0));
    Compiler compiler(hw, options);

    if (args.flag("list-mappings")) {
        for (const auto &intr : hw.intrinsics) {
            if (comp.inputs().size() != intr.compute.numSrcs() ||
                comp.combine() != intr.compute.combine())
                continue;
            auto plans = enumeratePlans(comp, intr, {});
            std::printf("%s: %zu valid mappings\n",
                        intr.name().c_str(), plans.size());
            for (const auto &plan : plans)
                std::printf("  %s\n",
                            plan.mapping()
                                .signature(comp)
                                .c_str());
        }
        return 0;
    }

    CompileResult result;
    std::string cache_path = args.str("cache", "");
    if (!cache_path.empty()) {
        TuningCache cache;
        std::ifstream probe(cache_path);
        if (probe.good())
            cache = TuningCache::loadFile(cache_path);
        result = compiler.compileWithCache(comp, cache);
        cache.saveFile(cache_path);
        std::printf("tuning cache: %s (%zu entries)\n\n",
                    cache_path.c_str(), cache.size());
    } else {
        result = compiler.compile(comp);
    }

    std::printf("%s", result.report().c_str());

    std::string emit_path = args.str("emit-c", "");
    if (!emit_path.empty()) {
        expect(result.tensorized && result.tuning.bestPlan,
               "--emit-c requires a tensorized result");
        CodegenOptions cg;
        cg.kernelName = "amos_kernel";
        std::ofstream out(emit_path);
        out << generateC(*result.tuning.bestPlan,
                         result.tuning.bestSchedule, cg);
        std::printf("\nwrote C kernel to %s\n", emit_path.c_str());
    }
    return 0;
}

} // namespace

int
main(int argc, char **argv)
{
    Args args;
    for (int i = 1; i < argc; ++i) {
        const char *arg = argv[i];
        if (std::strncmp(arg, "--", 2) != 0) {
            std::fprintf(stderr, "unexpected argument '%s'\n", arg);
            return 2;
        }
        std::string key = arg + 2;
        if (i + 1 < argc && std::strncmp(argv[i + 1], "--", 2) != 0)
            args.values[key] = argv[++i];
        else
            args.values[key] = "1";
    }
    try {
        return runCli(args);
    } catch (const std::exception &e) {
        std::fprintf(stderr, "%s\n", e.what());
        return 1;
    }
}
