/**
 * @file
 * amos_cli — command-line front end to the compiler.
 *
 * Compile an operator for a modelled accelerator, optionally through
 * a persistent tuning cache, list its valid mappings, or emit the
 * generated C kernel.
 *
 * Examples:
 *   amos_cli --op conv2d --batch 16 --cin 128 --cout 128 \
 *            --size 28 --kernel 3 --hw v100
 *   amos_cli --op gemm --m 512 --n 512 --k 512 --hw a100 \
 *            --cache /tmp/tuning.json --threads 8
 *   amos_cli --op gemm --m 256 --n 256 --k 256 --hw v100 --json \
 *       | jq .result.gflops
 *   amos_cli --op depthwise --batch 1 --cin 128 --size 28 \
 *            --kernel 3 --hw mali --list-mappings
 *   amos_cli --op conv2d --batch 2 --cin 4 --cout 8 --size 4 \
 *            --kernel 3 --hw v100 --emit-c /tmp/kernel.c
 *   amos_cli --op conv2d --size 14 --hw v100 \
 *            --trace-out /tmp/trace.json   # Chrome/Perfetto trace
 *
 * Scripting contract:
 *   --json writes a single machine-readable object to stdout (the
 *   same schema as one amos_served response line); human chatter
 *   goes to stderr. Exit codes: 0 success, 1 compile/config error,
 *   2 bad usage, 3 the operator could not be tensorized and
 *   --require-tensorized was given.
 */

#include <cstdio>
#include <cstring>
#include <fstream>
#include <map>

#include "amos/amos.hh"
#include "codegen/codegen.hh"
#include "mapping/generate.hh"
#include "serve/protocol.hh"
#include "support/trace.hh"

namespace {

using namespace amos;

struct Args
{
    std::map<std::string, std::string> values;

    std::int64_t
    num(const std::string &key, std::int64_t fallback) const
    {
        auto it = values.find(key);
        return it == values.end() ? fallback
                                  : std::stoll(it->second);
    }

    std::string
    str(const std::string &key, const std::string &fallback) const
    {
        auto it = values.find(key);
        return it == values.end() ? fallback : it->second;
    }

    bool
    flag(const std::string &key) const
    {
        return values.count(key) > 0;
    }
};

/**
 * The CLI describes the same compilations as the serve protocol;
 * building a CompileRequest keeps operator construction and dim
 * defaults in one place (serve::computationFromRequest).
 */
serve::CompileRequest
requestFromArgs(const Args &args)
{
    serve::CompileRequest req;
    req.op = args.str("op", "conv2d");
    req.hw = args.str("hw", "v100");
    for (const char *key :
         {"batch", "cin", "cout", "size", "kernel", "stride",
          "dilation", "m", "n", "k", "depth", "kdepth",
          "multiplier", "groups"}) {
        auto it = args.values.find(key);
        if (it != args.values.end())
            req.dims[key] = std::stoll(it->second);
    }
    req.generations =
        static_cast<int>(args.num("generations", 8));
    req.seed = static_cast<std::uint64_t>(args.num("seed", 2022));
    // Exploration worker threads; the tuned result is identical for
    // every value (0 = one per hardware thread).
    req.numThreads = static_cast<int>(args.num("threads", 0));
    return req;
}

int
runCli(const Args &args)
{
    auto req = requestFromArgs(args);
    auto hw = serve::hardwareFromRequest(req);
    auto comp = serve::computationFromRequest(req);
    bool json = args.flag("json");

    // --trace-out FILE: record the whole compilation as a Chrome
    // trace-event document (load in Perfetto or chrome://tracing).
    std::string trace_path = args.str("trace-out", "");
    if (!trace_path.empty())
        Tracer::global().setEnabled(true);

    if (!json) {
        std::printf("%s", comp.toString().c_str());
        std::printf("target: %s\n\n", hw.name.c_str());
    }

    Compiler compiler(hw, serve::tuneOptionsFromRequest(req));

    if (args.flag("list-mappings")) {
        for (const auto &intr : hw.intrinsics) {
            if (comp.inputs().size() != intr.compute.numSrcs() ||
                comp.combine() != intr.compute.combine())
                continue;
            auto plans = enumeratePlans(comp, intr, {});
            std::printf("%s: %zu valid mappings\n",
                        intr.name().c_str(), plans.size());
            for (const auto &plan : plans)
                std::printf("  %s\n",
                            plan.mapping()
                                .signature(comp)
                                .c_str());
        }
        return 0;
    }

    CompileResult result;
    std::string cache_path = args.str("cache", "");
    if (!cache_path.empty()) {
        auto cache = TuningCache::loadFileIfExists(cache_path);
        result = compiler.compileWithCache(comp, cache);
        cache.saveFile(cache_path);
        std::fprintf(stderr, "tuning cache: %s (%zu entries)\n",
                     cache_path.c_str(), cache.size());
    } else {
        result = compiler.compile(comp);
    }

    if (json) {
        Json out = Json::object();
        out.set("ok", Json(true));
        out.set("result", serve::compileResultToJson(result));
        std::printf("%s\n", out.dump().c_str());
    } else {
        std::printf("%s", result.report().c_str());
    }

    std::string emit_path = args.str("emit-c", "");
    if (!emit_path.empty()) {
        expect(result.tensorized && result.tuning.bestPlan,
               "--emit-c requires a tensorized result");
        CodegenOptions cg;
        cg.kernelName = "amos_kernel";
        std::ofstream out(emit_path);
        out << generateC(*result.tuning.bestPlan,
                         result.tuning.bestSchedule, cg);
        std::fprintf(stderr, "wrote C kernel to %s\n",
                     emit_path.c_str());
    }

    if (!trace_path.empty()) {
        Tracer::global().writeFile(trace_path);
        std::fprintf(stderr, "wrote %zu trace spans to %s\n",
                     Tracer::global().spanCount(),
                     trace_path.c_str());
    }

    if (args.flag("require-tensorized") && !result.tensorized)
        return 3;
    return 0;
}

} // namespace

int
main(int argc, char **argv)
{
    Args args;
    for (int i = 1; i < argc; ++i) {
        const char *arg = argv[i];
        if (std::strncmp(arg, "--", 2) != 0) {
            std::fprintf(stderr, "unexpected argument '%s'\n", arg);
            return 2;
        }
        std::string key = arg + 2;
        if (i + 1 < argc && std::strncmp(argv[i + 1], "--", 2) != 0)
            args.values[key] = argv[++i];
        else
            args.values[key] = "1";
    }
    try {
        return runCli(args);
    } catch (const std::exception &e) {
        if (args.flag("json")) {
            // Machine-readable failure on stdout, matching the
            // serve protocol's error envelope.
            amos::Json err = amos::Json::object();
            err.set("code", amos::Json("bad_request"));
            err.set("message", amos::Json(e.what()));
            amos::Json out = amos::Json::object();
            out.set("ok", amos::Json(false));
            out.set("error", std::move(err));
            std::printf("%s\n", out.dump().c_str());
        }
        std::fprintf(stderr, "%s\n", e.what());
        return 1;
    }
}
