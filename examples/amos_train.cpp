/**
 * @file
 * amos_train — offline trainer for learned-model snapshots.
 *
 * Replays a request trace (the same NDJSON format amos_served
 * consumes) through the tuner with a measurement sample sink
 * attached, fits the ridge-regression cost model on every
 * (profile, measured-cycles) pair the explorations produced, and
 * writes a JSON snapshot that amos_served can preload
 * (--model-snapshot) or hot-swap (the "reload_model" verb) and
 * amos_cli can use directly (--model-snapshot).
 *
 * Examples:
 *   amos_train --trace requests.ndjson --out /tmp/model.json
 *   amos_train --trace requests.ndjson --out model.json \
 *              --generations 4 --threads 0 --limit 32
 *
 * Flags:
 *   --trace FILE      request trace to learn from (required)
 *   --out FILE        snapshot path to write (required)
 *   --generations N   override every request's search depth
 *   --threads N       tuner threads per request (default 0 = #cpus)
 *   --limit N         train on at most N compile requests
 *
 * Prints a one-line JSON summary to stdout:
 *   {"ok":true,"requests":12,"samples":460,"out":"...","digest":..}
 * Exit codes: 0 success, 1 training/config error, 2 bad usage.
 */

#include <cstdio>
#include <cstring>
#include <fstream>
#include <map>
#include <string>

#include "amos/amos.hh"
#include "serve/protocol.hh"
#include "support/logging.hh"

namespace {

using namespace amos;

int
runTrain(const std::map<std::string, std::string> &args)
{
    auto str = [&](const std::string &key) {
        auto it = args.find(key);
        return it == args.end() ? std::string() : it->second;
    };
    auto num = [&](const std::string &key, long fallback) {
        auto it = args.find(key);
        return it == args.end() ? fallback : std::stol(it->second);
    };

    std::string trace_path = str("trace");
    std::string out_path = str("out");
    if (trace_path.empty() || out_path.empty()) {
        std::fprintf(stderr,
                     "usage: amos_train --trace FILE --out FILE "
                     "[--generations N] [--threads N] [--limit N]\n");
        return 2;
    }

    std::ifstream trace(trace_path);
    expect(trace.good(), "amos_train: cannot read trace file ",
           trace_path);

    long generations = num("generations", 0);
    long threads = num("threads", 0);
    long limit = num("limit", 0);

    LearnedModel model;
    long requests = 0;
    long skipped = 0;
    std::string line;
    while (std::getline(trace, line)) {
        if (line.empty() || line[0] == '#')
            continue;
        if (limit > 0 && requests >= limit)
            break;
        serve::CompileRequest req;
        try {
            Json parsed = Json::parse(line);
            expect(parsed.kind() == Json::Kind::Object,
                   "request: expected a JSON object");
            std::string type = parsed.has("type")
                                   ? parsed.get("type").asString()
                                   : "compile";
            if (type != "compile")
                continue; // control verbs carry no training signal
            req = serve::CompileRequest::fromJson(parsed);
        } catch (const std::exception &e) {
            ++skipped;
            warn("amos_train: skipping line (", e.what(), ")");
            continue;
        }
        try {
            auto comp = serve::computationFromRequest(req);
            auto hw = serve::hardwareFromRequest(req);
            TuneOptions options =
                serve::tuneOptionsFromRequest(req);
            if (generations > 0)
                options.generations =
                    static_cast<int>(generations);
            options.numThreads = static_cast<int>(threads);
            // The sink harvests every schedulable measurement the
            // exploration makes — exploit-phase ones included.
            options.sampleSink = &model;
            tune(comp, hw, options);
            ++requests;
        } catch (const std::exception &e) {
            ++skipped;
            warn("amos_train: skipping request '", req.id, "' (",
                 e.what(), ")");
        }
    }

    expect(model.sampleCount() >= LearnedModel::kMinSamples,
           "amos_train: only ", model.sampleCount(),
           " samples collected; need >= ",
           LearnedModel::kMinSamples,
           " (more requests or deeper searches)");
    model.fit();
    model.saveFile(out_path);

    Json summary = Json::object();
    summary.set("ok", Json(true));
    summary.set("requests", Json(static_cast<std::int64_t>(requests)));
    summary.set("skipped", Json(static_cast<std::int64_t>(skipped)));
    summary.set("samples", Json(static_cast<std::int64_t>(
                               model.sampleCount())));
    summary.set("out", Json(out_path));
    summary.set("digest", Json(model.digest()));
    std::printf("%s\n", summary.dump().c_str());
    return 0;
}

} // namespace

int
main(int argc, char **argv)
{
    std::map<std::string, std::string> args;
    for (int i = 1; i < argc; ++i) {
        const char *arg = argv[i];
        if (std::strncmp(arg, "--", 2) != 0) {
            std::fprintf(stderr, "unexpected argument '%s'\n", arg);
            return 2;
        }
        std::string key = arg + 2;
        if (i + 1 < argc && std::strncmp(argv[i + 1], "--", 2) != 0)
            args[key] = argv[++i];
        else
            args[key] = "1";
    }
    try {
        return runTrain(args);
    } catch (const std::exception &e) {
        std::fprintf(stderr, "%s\n", e.what());
        return 1;
    }
}
