/**
 * @file
 * amos_served — the long-lived compilation server.
 *
 * Speaks newline-delimited JSON over stdin/stdout (one request per
 * line, one response per line, correlated by "id"); see
 * docs/serving.md for the schema. SIGTERM/SIGINT trigger a graceful
 * drain: in-flight explorations finish, their responses are
 * written, the disk cache tier stays consistent.
 *
 * Examples:
 *   echo '{"type":"compile","id":"r1","op":"gemm","m":256,
 *          "n":256,"k":256,"hw":"v100","generations":4}' \
 *     | amos_served --cache-dir /var/cache/amos
 *   amos_served --replay trace.ndjson --cache-dir /tmp/amos \
 *               --workers 4
 *
 * Flags:
 *   --workers N          compilation workers (default 2, 0 = #cpus)
 *   --queue N            admission bound on in-flight explorations
 *   --cache-dir PATH     enable the on-disk cache tier
 *   --shards N           disk-tier shard files (default 8)
 *   --mem-capacity N     memory-tier LRU entries (default 256)
 *   --stats-period-ms N  periodic stats log line to stderr
 *   --no-warm            skip preloading the disk tier on start
 *   --replay FILE        batch mode: serve a request trace, print
 *                        responses + final stats, exit
 *   --trace-out FILE     record every request's spans and write one
 *                        Chrome trace-event document on exit
 *                        (requests carrying "trace_id" also get a
 *                        per-request span tree either way)
 *   --slow-ms N          slow-request postmortem threshold in ms
 *                        (default: adaptive, 2x windowed p99)
 *   --slowlog-size N     retained postmortems (default 32); read
 *                        them back with the "slowlog" verb
 *   --flight-dump FILE   also dump the flight-recorder rings to
 *                        FILE on SIGSEGV/SIGABRT (crash postmortem;
 *                        the "flightdump" verb dumps on demand)
 *   --warm-start MODE    default warm-start mode for requests with
 *                        no "warm_start" field of their own:
 *                        off|neighbors|model|both (default off)
 *   --model-snapshot F   preload a learned-model snapshot for the
 *                        model modes; a bad file degrades to
 *                        analytic screening with a warning (the
 *                        "reload_model" verb hot-swaps it later)
 */

#include <fcntl.h>
#include <unistd.h>

#include <atomic>
#include <csignal>
#include <cstdio>
#include <cstring>
#include <iostream>
#include <map>
#include <string>

#include "serve/server.hh"
#include "support/flight_recorder.hh"
#include "support/trace.hh"

namespace {

using namespace amos;

std::atomic<bool> g_stop{false};

/// Crash-dump fd, opened at handler-install time: open(2) is not
/// async-signal-unsafe, but allocating the path string inside the
/// handler would be.
int g_crash_fd = -1;

void
onSignal(int)
{
    g_stop.store(true, std::memory_order_relaxed);
}

void
onCrash(int sig)
{
    // Async-signal-safe by construction: crashDump only write(2)s.
    if (g_crash_fd >= 0) {
        FlightRecorder::global().crashDump(g_crash_fd);
        ::fsync(g_crash_fd);
    }
    // Restore and re-raise so the default action (core dump, exit
    // status) still happens.
    std::signal(sig, SIG_DFL);
    ::raise(sig);
}

/**
 * Install without SA_RESTART so a signal interrupts the blocking
 * stdin read and the server loop observes g_stop promptly.
 */
void
installSignalHandlers()
{
    struct sigaction sa;
    std::memset(&sa, 0, sizeof(sa));
    sa.sa_handler = onSignal;
    sigemptyset(&sa.sa_mask);
    sa.sa_flags = 0;
    sigaction(SIGTERM, &sa, nullptr);
    sigaction(SIGINT, &sa, nullptr);
}

/** Last-moments flight dump on abnormal termination. */
void
installCrashHandlers(const std::string &path)
{
    g_crash_fd = ::open(path.c_str(),
                        O_WRONLY | O_CREAT | O_TRUNC, 0644);
    if (g_crash_fd < 0) {
        std::fprintf(stderr,
                     "amos_served: cannot open flight dump %s\n",
                     path.c_str());
        return;
    }
    struct sigaction sa;
    std::memset(&sa, 0, sizeof(sa));
    sa.sa_handler = onCrash;
    sigemptyset(&sa.sa_mask);
    sa.sa_flags = 0;
    sigaction(SIGSEGV, &sa, nullptr);
    sigaction(SIGABRT, &sa, nullptr);
}

} // namespace

int
main(int argc, char **argv)
{
    std::map<std::string, std::string> args;
    for (int i = 1; i < argc; ++i) {
        const char *arg = argv[i];
        if (std::strncmp(arg, "--", 2) != 0) {
            std::fprintf(stderr, "unexpected argument '%s'\n", arg);
            return 2;
        }
        std::string key = arg + 2;
        if (i + 1 < argc && std::strncmp(argv[i + 1], "--", 2) != 0)
            args[key] = argv[++i];
        else
            args[key] = "1";
    }
    auto num = [&](const std::string &key, long fallback) {
        auto it = args.find(key);
        return it == args.end() ? fallback : std::stol(it->second);
    };
    auto str = [&](const std::string &key) {
        auto it = args.find(key);
        return it == args.end() ? std::string() : it->second;
    };

    serve::ServeOptions options;
    options.workers =
        static_cast<std::size_t>(num("workers", 2));
    options.maxQueue = static_cast<std::size_t>(num("queue", 64));
    options.cache.diskDir = str("cache-dir");
    options.cache.diskShards =
        static_cast<std::size_t>(num("shards", 8));
    options.cache.memoryCapacity =
        static_cast<std::size_t>(num("mem-capacity", 256));
    options.warmOnStart = args.count("no-warm") == 0;
    options.statsLogPeriodMs =
        static_cast<double>(num("stats-period-ms", 0));
    if (args.count("slow-ms"))
        options.slowMs = std::stod(args["slow-ms"]);
    options.slowlogSize =
        static_cast<std::size_t>(num("slowlog-size", 32));
    std::string warm = str("warm-start");
    if (!warm.empty()) {
        auto mode = warmStartModeFromName(warm);
        if (!mode) {
            std::fprintf(stderr,
                         "unknown --warm-start mode '%s' "
                         "(off|neighbors|model|both)\n",
                         warm.c_str());
            return 2;
        }
        options.warmStart = *mode;
    }
    options.modelSnapshotPath = str("model-snapshot");

    std::string flight_dump = str("flight-dump");
    if (!flight_dump.empty())
        installCrashHandlers(flight_dump);

    std::string trace_path = str("trace-out");
    if (!trace_path.empty())
        Tracer::global().setEnabled(true);
    auto write_trace = [&] {
        if (trace_path.empty())
            return;
        Tracer::global().writeFile(trace_path);
        inform("amos_served: wrote ",
               Tracer::global().spanCount(), " trace spans to ",
               trace_path);
    };

    try {
        serve::CompileService service(options);
        if (args.count("replay")) {
            int failed = serve::replayTrace(service, str("replay"),
                                            std::cout);
            write_trace();
            return failed == 0 ? 0 : 1;
        }

        installSignalHandlers();
        inform("amos_served: ready (workers=", options.workers,
               ", queue=", options.maxQueue, ", cache=",
               options.cache.diskDir.empty()
                   ? "memory-only"
                   : options.cache.diskDir,
               ")");
        serve::serveStream(service, std::cin, std::cout, &g_stop);
        inform("amos_served: drained; ", service.stats().summary());
        write_trace();
        return 0;
    } catch (const std::exception &e) {
        std::fprintf(stderr, "%s\n", e.what());
        return 1;
    }
}
